package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scidb/internal/compress"
	"scidb/internal/obs"
)

// ServeOptions tunes a worker server.
type ServeOptions struct {
	// Codec overrides the response-direction compression codec. Empty
	// mirrors whatever codec each client announced in its hello.
	Codec string
	// IOTimeout bounds the hello read and each response-frame write, so a
	// stalled peer cannot wedge a connection goroutine forever. Zero
	// means no deadlines.
	IOTimeout time.Duration
	// Session, when set, receives connections whose first four bytes are
	// SessionMagic: the client-facing session protocol served on the same
	// listener. The handler owns the connection until it returns (the
	// server closes the conn afterwards); it must manage its own read
	// deadlines. Nil rejects session connections.
	Session func(conn net.Conn, br *bufio.Reader)
}

// Server runs one worker behind a listener, speaking the multiplexed
// binary wire protocol. The first bytes of every connection are sniffed:
// a wire-magic prefix selects the framed protocol (requests on one
// connection are handled concurrently and responses return in completion
// order, keyed by request id); anything else falls back to the legacy
// one-gob-message-at-a-time protocol, so old clients keep working.
type Server struct {
	w    *Worker
	opts ServeOptions

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	reqs   sync.WaitGroup

	wire serverWireStats
}

// serverWireStats counts the server side of the wire protocol, mirroring
// the client's TransportStats so a scidb-server's /metrics covers
// transport traffic without a coordinator in the process.
type serverWireStats struct {
	framesIn, framesOut atomic.Int64
	bytesIn, bytesOut   atomic.Int64
	wireConns, gobConns atomic.Int64
}

// NewServer wraps a worker. The codec override is validated here so a
// misconfigured server fails at startup, not per connection. The server's
// wire counters register into the worker's metrics registry.
func NewServer(w *Worker, opts ServeOptions) (*Server, error) {
	if _, err := codecByName(opts.Codec); err != nil {
		return nil, err
	}
	s := &Server{w: w, opts: opts, conns: map[net.Conn]struct{}{}}
	w.reg.RegisterFunc("scidb_transport", "Server-side wire protocol counters.", obs.KindGauge,
		func(emit func(obs.Sample)) {
			emit(obs.Sample{Name: "scidb_transport_frames_in_total", Value: float64(s.wire.framesIn.Load())})
			emit(obs.Sample{Name: "scidb_transport_frames_out_total", Value: float64(s.wire.framesOut.Load())})
			emit(obs.Sample{Name: "scidb_transport_bytes_in_total", Value: float64(s.wire.bytesIn.Load())})
			emit(obs.Sample{Name: "scidb_transport_bytes_out_total", Value: float64(s.wire.bytesOut.Load())})
			emit(obs.Sample{Name: "scidb_transport_wire_conns_total", Value: float64(s.wire.wireConns.Load())})
			emit(obs.Sample{Name: "scidb_transport_gob_conns_total", Value: float64(s.wire.gobConns.Load())})
		})
	return s, nil
}

// Serve accepts connections until the listener closes. A closed listener
// (Shutdown, or ln.Close by the caller) is a clean nil return, not an
// error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			_ = conn.Close()
			return nil
		}
		go s.serveConn(conn)
	}
}

// Shutdown closes the listener, waits for every in-flight request to
// finish (its response is written before the request counts as done), then
// closes the remaining connections. Safe to call more than once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.reqs.Wait()
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// beginReq admits one request into the in-flight set, refusing once
// shutdown has started (the WaitGroup may already be draining).
func (s *Server) beginReq() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.reqs.Add(1)
	return true
}

// serveConn sniffs the protocol and runs the matching loop.
func (s *Server) serveConn(conn net.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	if s.opts.IOTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.opts.IOTimeout))
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	head, err := br.Peek(4)
	if err != nil {
		return
	}
	switch binary.LittleEndian.Uint32(head) {
	case wireMagic:
		s.serveWire(conn, br)
	case SessionMagic:
		if s.opts.Session != nil {
			_ = conn.SetReadDeadline(time.Time{})
			s.opts.Session(conn, br)
		}
	default:
		s.serveGob(conn, br)
	}
}

// serveWire handles one framed-protocol connection: hello negotiation,
// then a read loop that hands each frame to its own goroutine. The worker
// serializes what it must under its own lock; everything else — decode,
// execution of read-mostly ops, encode, compression — overlaps across the
// pipelined requests.
func (s *Server) serveWire(conn net.Conn, br *bufio.Reader) {
	if _, err := br.Discard(4); err != nil {
		return
	}
	clientCodecName, err := readHello(br)
	if err != nil {
		return
	}
	clientCodec, cerr := codecByName(clientCodecName)
	respName := s.opts.Codec
	if respName == "" {
		respName = clientCodecName
	}
	respCodec, rerr := codecByName(respName)
	if cerr != nil || rerr != nil {
		err := cerr
		if err == nil {
			err = rerr
		}
		_ = writeHelloReply(conn, "", err)
		return
	}
	if err := writeHelloReply(conn, respName, nil); err != nil {
		return
	}
	if s.opts.IOTimeout > 0 {
		_ = conn.SetReadDeadline(time.Time{})
	}
	s.wire.wireConns.Add(1)
	wr := &connWriter{conn: conn, bw: bufio.NewWriterSize(conn, 64<<10), timeout: s.opts.IOTimeout, stats: &s.wire}
	for {
		id, flags, body, err := ReadFrame(br)
		if err != nil {
			return
		}
		s.wire.framesIn.Add(1)
		s.wire.bytesIn.Add(int64(FrameHeaderLen + len(body)))
		raw, err := decodeFrameBody(body, flags, clientCodec)
		if err != nil {
			return
		}
		if !s.beginReq() {
			return
		}
		go func(id uint64, raw []byte) {
			defer s.reqs.Done()
			s.handleFrame(wr, respCodec, id, raw)
		}(id, raw)
	}
}

// handleFrame decodes one request, runs it, and frames the response.
func (s *Server) handleFrame(wr *connWriter, respCodec compress.Codec, id uint64, raw []byte) {
	var resp *Message
	req, err := decodeMessage(raw)
	if err != nil {
		resp = &Message{Err: fmt.Sprintf("cluster: corrupt request: %v", err)}
	} else {
		resp = s.w.Handle(req)
	}
	enc, err := encodeMessage(resp)
	if err != nil {
		enc, err = encodeMessage(&Message{Op: resp.Op, Err: fmt.Sprintf("cluster: encode response: %v", err)})
		if err != nil {
			return
		}
	}
	body, flags := encodeFrameBody(enc, respCodec)
	_ = wr.write(id, flags, body)
}

// connWriter shares one buffered writer between the concurrent response
// goroutines, coalescing flushes exactly like the client side.
type connWriter struct {
	conn    net.Conn
	bw      *bufio.Writer
	timeout time.Duration
	writers atomic.Int32
	mu      sync.Mutex
	stats   *serverWireStats // nil in tests that build a bare writer
}

func (w *connWriter) write(id uint64, flags uint8, body []byte) error {
	w.writers.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.timeout > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	}
	err := WriteFrame(w.bw, id, flags, body)
	if err == nil && w.stats != nil {
		w.stats.framesOut.Add(1)
		w.stats.bytesOut.Add(int64(FrameHeaderLen + len(body)))
	}
	if w.writers.Add(-1) == 0 && err == nil {
		err = w.bw.Flush()
	}
	if err != nil {
		// A half-written frame would desynchronize the stream; kill the
		// connection so the client fails fast instead of misparsing.
		_ = w.conn.Close()
	}
	return err
}

// serveGob handles one legacy connection: gob-framed request/response,
// strictly one at a time, exactly the pre-wire-protocol behaviour.
func (s *Server) serveGob(conn net.Conn, br *bufio.Reader) {
	s.wire.gobConns.Add(1)
	if s.opts.IOTimeout > 0 {
		_ = conn.SetReadDeadline(time.Time{})
	}
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	for {
		var req Message
		if err := dec.Decode(&req); err != nil {
			return
		}
		if !s.beginReq() {
			return
		}
		resp := s.w.Handle(&req)
		err := enc.Encode(resp)
		s.reqs.Done()
		if err != nil {
			return
		}
	}
}

// Serve runs a worker on a listener with default options until the
// listener closes; closing the listener returns nil. Kept as the
// one-call path used by tests and simple deployments — scidb-server uses
// NewServer directly for graceful shutdown.
func Serve(ln net.Listener, w *Worker) error {
	srv, err := NewServer(w, ServeOptions{})
	if err != nil {
		return err
	}
	return srv.Serve(ln)
}
