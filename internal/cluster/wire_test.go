package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"scidb/internal/array"
	"scidb/internal/bufcache"
	"scidb/internal/compress"
	"scidb/internal/exec"
	"scidb/internal/obs"
)

func wireTestMessage() *Message {
	return &Message{
		Op:        "sjoin",
		Array:     "left",
		Array2:    "right",
		Err:       "",
		Agg:       "sum",
		Attr:      "flux",
		GroupDims: []string{"x", "y"},
		OnL:       []string{"x"},
		OnR:       []string{"x"},
		Cells:     42,
		BoxLo:     []int64{1, 2},
		BoxHi:     []int64{16, 32},
		Payload:   []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01},
		Partials: []Partial{
			{Key: []int64{3, 4}, Sum: 1.5, SumSq: 2.25, Count: 7, Min: -1, Max: 9},
			{Key: nil, Sum: 0, SumSq: 0, Count: 0, Min: 0, Max: 0},
		},
		Schema: &array.Schema{
			Name:      "sessions",
			Updatable: true,
			Dims:      []array.Dimension{{Name: "t", High: array.Unbounded, ChunkLen: 64}},
			Attrs: []array.Attribute{
				{Name: "v", Type: array.TFloat64, Uncertain: true},
				{Name: "results", Type: array.TArray, Nested: &array.Schema{
					Name:  "result",
					Dims:  []array.Dimension{{Name: "rank", High: 10}},
					Attrs: []array.Attribute{{Name: "item", Type: array.TString}},
				}},
			},
		},
		Stats: &WorkerStats{CellsHeld: 1, CellsScanned: 2, BytesIn: 3, BytesOut: 4, Requests: 5},
		Cache: &bufcache.Stats{Hits: 9, Misses: 8, Loads: 7, Evictions: 6, Invalidations: 5,
			Entries: 4, BytesResident: 3, PinnedBytes: 2, Budget: 1},
		Exec: &exec.Stats{Parallelism: 4, TasksRun: 10, ChunksProcessed: 20,
			ParallelRuns: 3, SerialRuns: 2, Saturation: 1},
		TraceID: 0xfeedbeef,
		Spans: []obs.SpanData{
			{Parent: -1, Node: 2, DurNanos: 1500, Name: "scan",
				Keys: []string{"cells_scanned", "chunks"}, Vals: []int64{128, 4}},
			{Parent: 0, Node: 2, DurNanos: 700, Name: "decode"},
		},
		Metrics: []obs.Sample{
			{Name: "scidb_cache_hits_total", Value: 12},
			{Name: "scidb_worker_request_seconds_count", Label: `le="0.01"`, Value: 3},
		},
		Preds: []array.ZonePred{
			{Attr: 0, Op: ">", Val: array.Float64(1.5)},
			{Attr: 1, Op: "=", Val: array.String64("hot")},
			{Attr: 2, Op: "!=", Val: array.NullValue(array.TInt64)},
		},
		Skipped:      11,
		Chunks:       [][]byte{{0x01, 0x02, 0x03}, {0x00}, {0xff}},
		Path:         "/data/sky/night-042.csv",
		Adaptor:      "csv",
		ExclLo:       [][]int64{{1, 1}, {65, 1}},
		ExclHi:       [][]int64{{64, 64}, {128, 64}},
		RouteVersion: 12,
		Nodes:        []int64{2, 0, 1},
		Release:      true,
		Heat: []HeatSample{
			{Array: "sky", Origin: []int64{1, 65}, Score: 42.5},
			{Array: "sky", Origin: []int64{65, 65}, Score: 1},
		},
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	for _, m := range []*Message{
		wireTestMessage(),
		{},           // zero message
		{Op: "ping"}, // minimal request
		{Op: "scan", Err: "cluster: node 1 has no array \"ghost\""},
	} {
		enc, err := encodeMessage(m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := decodeMessage(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
		}
	}
}

func TestMessageCodecRejectsCorruptInput(t *testing.T) {
	enc, err := encodeMessage(wireTestMessage())
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix must error, never panic.
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := decodeMessage(enc[:cut]); err == nil {
			t.Errorf("decode of %d-byte truncation succeeded", cut)
		}
	}
	// A huge length prefix must be rejected before allocation.
	bad := append([]byte(nil), enc...)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0xff
	if _, err := decodeMessage(bad); err == nil {
		t.Error("decode of poisoned length prefix succeeded")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := bytes.Repeat([]byte("scidb"), 100)
	if err := WriteFrame(&buf, 77, flagCompressed, body); err != nil {
		t.Fatal(err)
	}
	id, flags, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if id != 77 || flags != flagCompressed || !bytes.Equal(got, body) {
		t.Errorf("frame round trip: id=%d flags=%d len=%d", id, flags, len(got))
	}
	// Oversized length prefix is refused.
	var hdr bytes.Buffer
	if err := WriteFrame(&hdr, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	raw := hdr.Bytes()
	raw[0], raw[1], raw[2], raw[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestFrameBodyCompression(t *testing.T) {
	codec, err := compress.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	// Small bodies skip compression regardless of codec.
	small := []byte("tiny")
	if body, flags := encodeFrameBody(small, codec); flags != 0 || !bytes.Equal(body, small) {
		t.Errorf("small body was compressed: flags=%d", flags)
	}
	// Large compressible bodies shrink and round-trip.
	big := bytes.Repeat([]byte("abcdefgh"), 4096)
	body, flags := encodeFrameBody(big, codec)
	if flags&flagCompressed == 0 {
		t.Fatal("compressible body not compressed")
	}
	if len(body) >= len(big) {
		t.Fatalf("compressed body %d >= raw %d", len(body), len(big))
	}
	back, err := decodeFrameBody(body, flags, codec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, big) {
		t.Error("compression round trip mismatch")
	}
	// A compressed flag without a negotiated codec is a protocol error.
	if _, err := decodeFrameBody(body, flags, nil); err == nil {
		t.Error("compressed frame accepted on uncompressed connection")
	}
	// No codec: passthrough.
	if body, flags := encodeFrameBody(big, nil); flags != 0 || !bytes.Equal(body, big) {
		t.Error("nil codec altered the body")
	}
}

func TestHelloNegotiation(t *testing.T) {
	var wire bytes.Buffer
	if err := writeHello(&wire, "gzip"); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(wire.Bytes())
	var magic [4]byte
	if _, err := r.Read(magic[:]); err != nil {
		t.Fatal(err)
	}
	name, err := readHello(r)
	if err != nil || name != "gzip" {
		t.Fatalf("readHello = %q, %v", name, err)
	}
	// Server accept reply.
	wire.Reset()
	if err := writeHelloReply(&wire, "delta", nil); err != nil {
		t.Fatal(err)
	}
	got, err := readHelloReply(bytes.NewReader(wire.Bytes()))
	if err != nil || got != "delta" {
		t.Fatalf("readHelloReply = %q, %v", got, err)
	}
	// Server reject reply surfaces the message.
	wire.Reset()
	if err := writeHelloReply(&wire, "", errUnknownCodecForTest()); err != nil {
		t.Fatal(err)
	}
	if _, err := readHelloReply(bytes.NewReader(wire.Bytes())); err == nil {
		t.Error("rejected hello decoded as success")
	}
}

func errUnknownCodecForTest() error {
	_, err := compress.ByName("no-such-codec")
	return err
}
