package cluster

import (
	"path/filepath"
	"reflect"
	"testing"

	"scidb/internal/array"
	"scidb/internal/insitu"
	"scidb/internal/partition"
	"scidb/internal/storage"
)

func loadTestSchema() *array.Schema {
	return &array.Schema{
		Name: "grid",
		Dims: []array.Dimension{
			{Name: "x", High: 16, ChunkLen: 4},
			{Name: "y", High: 16, ChunkLen: 4},
		},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
}

// TestLoadChunksWireTolerance pins the second-presence-byte contract: a
// chunks/insitu message round-trips, and bytes trailing the blocks this
// decoder understands (a future peer's additions) are ignored, not rejected.
func TestLoadChunksWireTolerance(t *testing.T) {
	m := &Message{
		Op: "loadchunks", Array: "g", Cells: 7,
		Chunks:  [][]byte{{0xaa, 0xbb}, {0x01}},
		Path:    "/data/in.csv",
		Adaptor: "csv",
	}
	enc, err := encodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
	}
	// A newer peer appends blocks after the insitu block; this decoder must
	// ignore them.
	future := append(append([]byte(nil), enc...), 0x99, 0x00, 0x17)
	got2, err := decodeMessage(future)
	if err != nil {
		t.Fatalf("decode with future trailing bytes: %v", err)
	}
	if !reflect.DeepEqual(got, got2) {
		t.Errorf("trailing bytes changed the message:\n got: %+v\nwant: %+v", got2, got)
	}
}

// buildChunkPayloads routes the grid's cells per scheme and encodes each
// node's chunks exactly like the parallel loader does.
func buildChunkPayloads(t *testing.T, schema *array.Schema, scheme partition.Scheme, gen func(array.Coord) (array.Cell, bool)) (payloads [][][]byte, cells []int64) {
	t.Helper()
	bs := schema.Clone()
	for i := range bs.Dims {
		bs.Dims[i].High = array.Unbounded
	}
	builders := make([]*array.Array, scheme.NumNodes())
	lo := array.Coord{1, 1}
	hi := array.Coord{schema.Dims[0].High, schema.Dims[1].High}
	array.IterBox(array.Box{Lo: lo, Hi: hi}, func(c array.Coord) bool {
		cell, ok := gen(c)
		if !ok {
			return true
		}
		n := scheme.NodeFor(c)
		if builders[n] == nil {
			builders[n] = array.MustNew(bs.Clone())
		}
		if err := builders[n].Set(c.Clone(), cell); err != nil {
			t.Fatal(err)
		}
		return true
	})
	payloads = make([][][]byte, len(builders))
	cells = make([]int64, len(builders))
	for n, b := range builders {
		if b == nil {
			continue
		}
		for _, ch := range b.Chunks() {
			if ch.CellsPresent() == 0 {
				continue
			}
			raw, _, err := storage.EncodeChunkZones(bs, ch)
			if err != nil {
				t.Fatal(err)
			}
			payloads[n] = append(payloads[n], raw)
			cells[n] += ch.CellsPresent()
		}
	}
	return payloads, cells
}

// TestLoadChunksMatchesPut: shipping pre-encoded chunk batches must leave
// the cluster in the same queryable state as the cell-at-a-time put path,
// on both store-backed and array-backed partitions.
func TestLoadChunksMatchesPut(t *testing.T) {
	for _, persist := range []bool{false, true} {
		schema := loadTestSchema()
		scheme := partition.Block{Nodes: 2, SplitDim: 0, High: 16}
		gen := func(c array.Coord) (array.Cell, bool) {
			if (c[0]+c[1])%3 == 0 { // sparse: skip a third of the grid
				return nil, false
			}
			return array.Cell{array.Float64(float64(c[0]*100 + c[1]))}, true
		}
		newGrid := func() *Coordinator {
			tr := NewLocalWithOptions(2, LocalOptions{
				Persist: persist, Stride: []int64{4, 4}, CacheBytes: 1 << 20,
			})
			co := NewCoordinator(tr, 0)
			if err := co.Create("g", schema, scheme); err != nil {
				t.Fatal(err)
			}
			return co
		}

		chunked := newGrid()
		payloads, cells := buildChunkPayloads(t, schema, scheme, gen)
		for n := range payloads {
			if len(payloads[n]) == 0 {
				continue
			}
			if err := chunked.LoadChunks("g", n, payloads[n], cells[n]); err != nil {
				t.Fatal(err)
			}
		}
		if err := chunked.Flush("g"); err != nil {
			t.Fatal(err)
		}

		puts := newGrid()
		lo := array.Coord{1, 1}
		hi := array.Coord{16, 16}
		array.IterBox(array.Box{Lo: lo, Hi: hi}, func(c array.Coord) bool {
			cell, ok := gen(c)
			if !ok {
				return true
			}
			if err := puts.Put("g", c.Clone(), cell); err != nil {
				t.Fatal(err)
			}
			return true
		})
		if err := puts.Flush("g"); err != nil {
			t.Fatal(err)
		}

		box := array.Box{Lo: lo, Hi: hi}
		a, err := chunked.Scan("g", box)
		if err != nil {
			t.Fatal(err)
		}
		b, err := puts.Scan("g", box)
		if err != nil {
			t.Fatal(err)
		}
		if a.Count() != b.Count() || a.Count() == 0 {
			t.Fatalf("persist=%v: loadchunks count %d, put count %d", persist, a.Count(), b.Count())
		}
		b.Iter(func(c array.Coord, want array.Cell) bool {
			got, ok := a.At(c)
			if !ok || got[0].Float != want[0].Float {
				t.Fatalf("persist=%v: cell %v = %v,%v; want %v", persist, c, got, ok, want)
			}
			return true
		})
	}
}

// TestRegisterInsituQueries: a CSV file registered in situ answers count,
// box scans, and pushed-down aggregates with no load step, including on a
// node whose slab of the file is empty.
func TestRegisterInsituQueries(t *testing.T) {
	schema := &array.Schema{
		Name: "ext",
		Dims: []array.Dimension{
			{Name: "x", High: 12, ChunkLen: 4},
			{Name: "y", High: 6, ChunkLen: 4},
		},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
	src := array.MustNew(schema.Clone())
	var sum float64
	for x := int64(1); x <= 12; x++ {
		for y := int64(1); y <= 6; y++ {
			v := float64(x*100 + y)
			sum += v
			if err := src.Set(array.Coord{x, y}, array.Cell{array.Float64(v)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "ext.csv")
	if err := insitu.WriteCSV(path, src); err != nil {
		t.Fatal(err)
	}

	// Three nodes, two-slab scheme: node 2 owns none of the file.
	tr := NewLocalWithOptions(3, LocalOptions{Stride: []int64{4, 4}, CacheBytes: 1 << 20})
	co := NewCoordinator(tr, 0)
	scheme := partition.Block{Nodes: 2, SplitDim: 0, High: 12}
	if err := co.RegisterInsitu("ext", path, "csv", schema, scheme); err != nil {
		t.Fatal(err)
	}

	n, err := co.Count("ext")
	if err != nil || n != 72 {
		t.Fatalf("count = %d, %v; want 72", n, err)
	}
	// A box scan crossing the slab boundary (node 0 owns x 1..6).
	box := array.Box{Lo: array.Coord{5, 2}, Hi: array.Coord{8, 4}}
	got, err := co.Scan("ext", box)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 4*3 {
		t.Fatalf("box scan count = %d; want 12", got.Count())
	}
	cell, ok := got.At(array.Coord{7, 3})
	if !ok || cell[0].Float != 703 {
		t.Fatalf("scan cell = %v, %v; want 703", cell, ok)
	}
	// Pushed-down aggregate over the whole file.
	agg, err := co.Aggregate("ext", array.Box{Lo: array.Coord{1, 1}, Hi: array.Coord{12, 6}}, "sum", "v", nil)
	if err != nil {
		t.Fatal(err)
	}
	total, ok := agg.At(array.Coord{1})
	if !ok || total[0].Float != sum {
		t.Fatalf("sum = %v, %v; want %v", total, ok, sum)
	}
	// Flush is a no-op for a read-through view; drop unregisters everywhere.
	if err := co.Flush("ext"); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := co.Drop("ext"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if _, err := co.Count("ext"); err == nil {
		t.Fatal("count after drop succeeded")
	}
}

// TestRegisterInsituNeedsBoxer: hash partitioning cannot describe per-node
// slabs, so registration must be refused up front.
func TestRegisterInsituNeedsBoxer(t *testing.T) {
	tr := NewLocal(2)
	co := NewCoordinator(tr, 0)
	schema := loadTestSchema()
	err := co.RegisterInsitu("ext", "/nope.csv", "csv", schema, partition.Hash{Nodes: 2, Dims: []int{0}})
	if err == nil {
		t.Fatal("hash scheme accepted for in-situ registration")
	}
}
