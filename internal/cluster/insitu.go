package cluster

// Worker-side halves of the parallel bulk loader and distributed in-situ
// scanning (§2.8–§2.9).
//
// "loadchunks" adopts a batch of pre-encoded chunk payloads as buckets
// (store-backed partitions) or merges them wholesale (array-backed), so
// ingest pays one parse + one encode total, both on the loader side.
//
// "insitu" registers an external file region as a first-class partition:
// the node materializes stride-aligned chunks of its slab lazily through
// the adaptor → encoded-chunk path into the buffer pool, so the file is
// queryable with no load step. The file must be reachable from the worker
// (shared filesystem or a local copy at the same path) — in-situ data
// stays under user control and gets no replication or recovery.

import (
	"fmt"

	"scidb/internal/array"
	"scidb/internal/bufcache"
	"scidb/internal/insitu"
	"scidb/internal/storage"
)

// loadChunks ingests a batch of pre-encoded chunk payloads shipped by the
// parallel bulk loader.
func (w *Worker) loadChunks(req *Message) (*Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, isStore := w.stores[req.Array]
	var a *array.Array
	var schema *array.Schema
	if isStore {
		schema = st.Schema()
	} else {
		var err error
		if a, err = w.local(req.Array); err != nil {
			return nil, err
		}
		schema = a.Schema
	}
	var cells, bytesIn int64
	for _, payload := range req.Chunks {
		ch, err := storage.DecodeChunk(schema, payload)
		if err != nil {
			return nil, err
		}
		if isStore {
			// The payload bytes become the bucket verbatim — no re-encode.
			if err := st.AdoptEncoded(payload, ch); err != nil {
				return nil, err
			}
		} else if err := a.MergeChunk(ch); err != nil {
			return nil, err
		}
		cells += ch.CellsPresent()
		bytesIn += int64(len(payload))
	}
	w.stats.CellsHeld += cells
	w.stats.BytesIn += bytesIn
	return &Message{Op: "loadchunks", Cells: cells}, nil
}

// insituPart is one node's registration of an external file: the adaptor,
// the node's slab of the global coordinate box, and the lazy chunk grid it
// materializes through.
type insituPart struct {
	name    string
	path    string
	adaptor string
	ds      insitu.Dataset
	schema  *array.Schema // partition-local (unbounded dims, ChunkLen set)
	box     array.Box     // this node's slab; unset when empty
	empty   bool
	stride  []int64
	cacheID uint64 // buffer-pool namespace; 0 when uncached
}

// insituOp registers (or replaces) an in-situ partition on this node.
// An absent box means the partitioning assigns this node none of the file.
func (w *Worker) insituOp(req *Message) (*Message, error) {
	if req.Schema == nil {
		return nil, fmt.Errorf("cluster: insitu without schema")
	}
	ad, err := insitu.ByName(req.Adaptor)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if old, ok := w.insitus[req.Array]; ok {
		old.release(w)
	}
	ps := partitionSchema(req.Schema)
	p := &insituPart{name: req.Array, path: req.Path, adaptor: req.Adaptor, schema: ps}
	if len(req.BoxLo) == 0 {
		p.empty = true
	} else {
		ds, err := ad.Open(req.Path)
		if err != nil {
			return nil, err
		}
		p.ds = ds
		p.box = array.Box{Lo: req.BoxLo, Hi: req.BoxHi}
		p.stride = make([]int64, len(ps.Dims))
		for i := range p.stride {
			if i < len(w.opts.Stride) && w.opts.Stride[i] > 0 {
				p.stride[i] = w.opts.Stride[i]
			} else {
				p.stride[i] = ps.Dims[i].ChunkLen
			}
		}
		if w.cache != nil {
			p.cacheID = w.cache.RegisterStore()
		}
	}
	if w.insitus == nil {
		w.insitus = map[string]*insituPart{}
	}
	w.insitus[req.Array] = p
	return &Message{Op: "insitu"}, nil
}

// release closes the part's dataset and drops its pool entries.
func (p *insituPart) release(w *Worker) {
	if p.ds != nil {
		_ = p.ds.Close()
	}
	if w.cache != nil && p.cacheID != 0 {
		w.cache.InvalidateStore(p.cacheID)
	}
}

// gridOrigin aligns c down to the part's chunk grid (1-based strides).
func (p *insituPart) gridOrigin(c array.Coord) array.Coord {
	o := make(array.Coord, len(c))
	for i, cl := range p.stride {
		o[i] = ((c[i]-1)/cl)*cl + 1
	}
	return o
}

// bucketID numbers a grid origin within the slab's chunk grid, row-major —
// the part's stable key space inside the shared buffer pool.
func (p *insituPart) bucketID(origin array.Coord) int64 {
	id := int64(0)
	for i, cl := range p.stride {
		extent := (p.box.Hi[i]-1)/cl + 1
		id = id*extent + (origin[i]-1)/cl
	}
	return id
}

// chunkAt materializes (or fetches from the pool) the grid chunk at origin:
// scan the adaptor over the region, then round-trip through the chunk codec
// so the result carries zone maps and encoded column views like any bucket.
func (p *insituPart) chunkAt(w *Worker, origin array.Coord) (*array.Chunk, func(), error) {
	if w.heat != nil {
		// Every chunk consultation scores a touch, pool hit or miss alike.
		w.heat.Touch(p.name, origin, 1)
	}
	load := func() (*array.Chunk, error) {
		shape := make([]int64, len(p.stride))
		copy(shape, p.stride)
		ch := array.NewChunk(p.schema, origin.Clone(), shape)
		region, ok := ch.Box().Intersect(p.box)
		if !ok {
			return ch, nil
		}
		var werr error
		if err := p.ds.Scan(region, func(c array.Coord, cell array.Cell) bool {
			if err := ch.Set(c, cell); err != nil {
				werr = err
				return false
			}
			return true
		}); err != nil {
			return nil, err
		}
		if werr != nil {
			return nil, werr
		}
		if ch.CellsPresent() == 0 {
			return ch, nil
		}
		raw, _, err := storage.EncodeChunkZones(p.schema, ch)
		if err != nil {
			return nil, err
		}
		return storage.DecodeChunk(p.schema, raw)
	}
	if w.cache == nil || p.cacheID == 0 {
		ch, err := load()
		return ch, func() {}, err
	}
	h, err := w.cache.GetOrLoad(bufcache.Key{Store: p.cacheID, Bucket: p.bucketID(origin)}, load)
	if err != nil {
		return nil, nil, err
	}
	return h.Chunk(), h.Release, nil
}

// insituScan visits the part's cells intersecting box, materializing grid
// chunks lazily. fn's early-stop return is honoured.
func (w *Worker) insituScan(p *insituPart, box array.Box, fn func(array.Coord, array.Cell) bool) error {
	if p.empty {
		return nil
	}
	q, ok := p.box.Intersect(box)
	if !ok {
		return nil
	}
	// Odometer over the grid origins covering q.
	origin := p.gridOrigin(q.Lo)
	for {
		ch, release, err := p.chunkAt(w, origin)
		if err != nil {
			return err
		}
		cont := true
		if inter, ok := ch.Box().Intersect(q); ok {
			array.IterBox(inter, func(c array.Coord) bool {
				cell, present := ch.Get(c)
				if !present {
					return true
				}
				if !fn(c, cell) {
					cont = false
					return false
				}
				return true
			})
		}
		release()
		if !cont {
			return nil
		}
		// Advance the odometer, last dimension fastest.
		d := len(origin) - 1
		for ; d >= 0; d-- {
			origin[d] += p.stride[d]
			if origin[d] <= q.Hi[d] {
				break
			}
			origin[d] = p.gridOrigin(q.Lo)[d]
		}
		if d < 0 {
			return nil
		}
	}
}
