package cluster

// The multiplexed binary wire protocol.
//
// A connection starts with a hello exchange that pins the protocol version
// and negotiates per-direction payload compression:
//
//	client hello: u32 magic "SCWP" | u8 version | u8 len | codec name
//	server hello: u32 magic | u8 version | u8 status | u8 len | codec name
//	              | (status != 0) u32 len | error text
//
// The client announces the codec it will compress its frames with; the
// server replies with the codec it will use for responses (its configured
// override, or a mirror of the client's). After the hello, both directions
// carry length-prefixed frames:
//
//	u32 body length | u64 request id | u8 flags | body
//
// The body is a hand-rolled binary Message encoding (below) — chunk
// payloads travel in their storage.EncodeArray form untouched, so the hot
// field is a single length-prefixed copy, never re-encoded. flagCompressed
// marks a body that was shrunk by the direction's negotiated codec; small
// or incompressible bodies are sent raw even when a codec is negotiated.
// Request ids are chosen by the client; a response echoes the id of the
// request it answers, which is what lets many calls pipeline concurrently
// over one connection with a reader goroutine dispatching responses to
// waiters in completion order.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"scidb/internal/array"
	"scidb/internal/bufcache"
	"scidb/internal/compress"
	"scidb/internal/exec"
	"scidb/internal/obs"
	"scidb/internal/storage"
)

const (
	wireMagic   = 0x53435750 // "SCWP"
	wireVersion = 1

	// SessionMagic opens the client-facing session protocol
	// (internal/session). It shares the cluster listener: Server sniffs the
	// first four bytes of each connection and hands session connections to
	// ServeOptions.Session, so one port serves cluster peers, legacy gob
	// clients, and interactive sessions.
	SessionMagic = 0x53435345 // "SCSE"

	// FrameHeaderLen is u32 length + u64 request id + u8 flags.
	FrameHeaderLen = 4 + 8 + 1

	// MaxFrameBody caps a single frame so a corrupt length prefix cannot
	// force a huge allocation.
	MaxFrameBody = 1 << 30

	// compressThreshold is the smallest body worth running through the
	// negotiated codec; control messages stay raw.
	compressThreshold = 512
)

// Frame flags.
const (
	flagCompressed = 1 << 0
)

// writeHello sends the client half of the hello exchange.
func writeHello(w io.Writer, codec string) error {
	fw := storage.NewFieldWriter(w)
	fw.U32(wireMagic)
	fw.U8(wireVersion)
	if len(codec) > 255 {
		return fmt.Errorf("cluster: codec name too long")
	}
	fw.U8(uint8(len(codec)))
	fw.Raw([]byte(codec))
	return fw.Err()
}

// readHello consumes a client hello (after the magic has already been
// sniffed and consumed by the server) and returns the announced codec name.
func readHello(r io.Reader) (string, error) {
	fr := storage.NewFieldReader(r)
	if v := fr.U8(); fr.Err() == nil && v != wireVersion {
		return "", fmt.Errorf("cluster: wire version %d, want %d", v, wireVersion)
	}
	n := int(fr.U8())
	name := make([]byte, n)
	fr.Raw(name)
	if fr.Err() != nil {
		return "", fr.Err()
	}
	return string(name), nil
}

// writeHelloReply sends the server half: its response codec, or an error.
func writeHelloReply(w io.Writer, codec string, helloErr error) error {
	fw := storage.NewFieldWriter(w)
	fw.U32(wireMagic)
	fw.U8(wireVersion)
	if helloErr != nil {
		fw.U8(1)
		fw.U8(0)
		fw.String(helloErr.Error())
	} else {
		fw.U8(0)
		fw.U8(uint8(len(codec)))
		fw.Raw([]byte(codec))
	}
	return fw.Err()
}

// readHelloReply consumes the server hello and returns the server's
// response codec name.
func readHelloReply(r io.Reader) (string, error) {
	fr := storage.NewFieldReader(r)
	if m := fr.U32(); fr.Err() == nil && m != wireMagic {
		return "", fmt.Errorf("cluster: bad hello magic %#x (not a scidb wire server?)", m)
	}
	if v := fr.U8(); fr.Err() == nil && v != wireVersion {
		return "", fmt.Errorf("cluster: server speaks wire version %d, want %d", v, wireVersion)
	}
	status := fr.U8()
	n := int(fr.U8())
	name := make([]byte, n)
	fr.Raw(name)
	if fr.Err() != nil {
		return "", fr.Err()
	}
	if status != 0 {
		msg := fr.String()
		if fr.Err() != nil {
			return "", fr.Err()
		}
		return "", fmt.Errorf("cluster: server rejected hello: %s", msg)
	}
	return string(name), nil
}

// codecByName resolves a negotiated codec name; "" and "none" mean no
// compression (nil codec).
func codecByName(name string) (compress.Codec, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	return compress.ByName(name)
}

// encodeFrameBody runs the encoded message through the direction's codec
// when it pays off, returning the body and its flags.
func encodeFrameBody(enc []byte, codec compress.Codec) ([]byte, uint8) {
	if codec == nil || len(enc) < compressThreshold {
		return enc, 0
	}
	packed := codec.Encode(enc)
	if len(packed) >= len(enc) {
		return enc, 0
	}
	return packed, flagCompressed
}

// WriteFrame writes one frame. The caller owns any locking around w.
func WriteFrame(w io.Writer, id uint64, flags uint8, body []byte) error {
	var hdr [FrameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint64(hdr[4:12], id)
	hdr[12] = flags
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame header + body.
func ReadFrame(r io.Reader) (id uint64, flags uint8, body []byte, err error) {
	var hdr [FrameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	id = binary.LittleEndian.Uint64(hdr[4:12])
	flags = hdr[12]
	if n > MaxFrameBody {
		return 0, 0, nil, fmt.Errorf("cluster: frame body %d bytes exceeds limit", n)
	}
	body = make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, 0, nil, err
	}
	return id, flags, body, nil
}

// decodeFrameBody undoes encodeFrameBody.
func decodeFrameBody(body []byte, flags uint8, codec compress.Codec) ([]byte, error) {
	if flags&flagCompressed == 0 {
		return body, nil
	}
	if codec == nil {
		return nil, fmt.Errorf("cluster: compressed frame on an uncompressed connection")
	}
	return codec.Decode(body)
}

// Message presence bits for the optional pointer fields. Bits are only
// ever appended (with their guarded blocks written after all earlier
// blocks), so a legacy decoder that predates a bit simply never reads the
// trailing bytes — decodeMessage has always ignored unread remainder.
const (
	msgHasSchema  = 1 << 0
	msgHasStats   = 1 << 1
	msgHasCache   = 1 << 2
	msgHasExec    = 1 << 3
	msgHasStore   = 1 << 4
	msgHasTrace   = 1 << 5 // TraceID + Spans (PR 5 telemetry)
	msgHasMetrics = 1 << 6 // Metrics registry samples
	msgHasPreds   = 1 << 7 // Preds + Skipped (compressed-execution pruning)
)

// The first presence byte is full, so later fields chain through a second
// one. It is written only when one of its bits is set — legacy messages
// stay byte-identical — and read only when bytes remain after the first
// byte's blocks, so decoders on either side of the version line interop:
// an old decoder never looks past the blocks it knows, and a new decoder
// ignores unknown present2 bits (and any bytes after the last block it
// understands), the same append-only contract the first byte grew under.
const (
	msg2HasChunks = 1 << 0 // Chunks: batched pre-encoded chunk payloads (bulk load)
	msg2HasInsitu = 1 << 1 // Path + Adaptor (in-situ registration)
	msg2HasRoute  = 1 << 2 // ExclLo/ExclHi + RouteVersion + Nodes + Release (online rebalancing)
	msg2HasHeat   = 1 << 3 // Heat samples ("heat" response)
)

// encodePredValue writes one predicate constant. Preds are scalar
// comparisons, so the nested-array field never travels.
func encodePredValue(w *storage.FieldWriter, v array.Value) {
	w.U8(uint8(v.Type))
	w.Bool(v.Null)
	w.I64(v.Int)
	w.F64(v.Float)
	w.String(v.Str)
	w.Bool(v.Bool)
	w.F64(v.Sigma)
}

func decodePredValue(r *storage.FieldReader) array.Value {
	return array.Value{
		Type:  array.Type(r.U8()),
		Null:  r.Bool(),
		Int:   r.I64(),
		Float: r.F64(),
		Str:   r.String(),
		Bool:  r.Bool(),
		Sigma: r.F64(),
	}
}

// encodeMessage hand-rolls a Message to its wire form. Field order is
// fixed; Payload is carried verbatim (it is already the binary
// storage.EncodeArray / EncodeChunk form), so the dominant field costs one
// length-prefixed copy instead of a reflective re-encode.
func encodeMessage(m *Message) ([]byte, error) {
	var b bytes.Buffer
	w := storage.NewFieldWriter(&b)
	w.String(m.Op)
	w.String(m.Array)
	w.String(m.Array2)
	w.String(m.Err)
	w.String(m.Agg)
	w.String(m.Attr)
	w.Strings(m.GroupDims)
	w.Strings(m.OnL)
	w.Strings(m.OnR)
	w.I64(m.Cells)
	w.I64s(m.BoxLo)
	w.I64s(m.BoxHi)
	w.Bytes(m.Payload)
	w.U32(uint32(len(m.Partials)))
	for i := range m.Partials {
		p := &m.Partials[i]
		w.I64s(p.Key)
		w.F64(p.Sum)
		w.F64(p.SumSq)
		w.I64(p.Count)
		w.F64(p.Min)
		w.F64(p.Max)
	}
	var present uint8
	if m.Schema != nil {
		present |= msgHasSchema
	}
	if m.Stats != nil {
		present |= msgHasStats
	}
	if m.Cache != nil {
		present |= msgHasCache
	}
	if m.Exec != nil {
		present |= msgHasExec
	}
	if m.Store != nil {
		present |= msgHasStore
	}
	if m.TraceID != 0 || len(m.Spans) > 0 {
		present |= msgHasTrace
	}
	if len(m.Metrics) > 0 {
		present |= msgHasMetrics
	}
	if len(m.Preds) > 0 || m.Skipped != 0 {
		present |= msgHasPreds
	}
	w.U8(present)
	if m.Schema != nil {
		EncodeSchema(w, m.Schema)
	}
	if m.Stats != nil {
		w.I64(m.Stats.CellsHeld)
		w.I64(m.Stats.CellsScanned)
		w.I64(m.Stats.BytesIn)
		w.I64(m.Stats.BytesOut)
		w.I64(m.Stats.Requests)
	}
	if m.Cache != nil {
		c := m.Cache
		w.I64(c.Hits)
		w.I64(c.Misses)
		w.I64(c.Loads)
		w.I64(c.Evictions)
		w.I64(c.Invalidations)
		w.I64(c.Entries)
		w.I64(c.BytesResident)
		w.I64(c.PinnedBytes)
		w.I64(c.Budget)
	}
	if m.Exec != nil {
		e := m.Exec
		w.I64(int64(e.Parallelism))
		w.I64(e.TasksRun)
		w.I64(e.ChunksProcessed)
		w.I64(e.ParallelRuns)
		w.I64(e.SerialRuns)
		w.I64(e.Saturation)
	}
	if m.Store != nil {
		st := m.Store
		w.I64(st.BucketsWritten)
		w.I64(st.BucketsMerged)
		w.I64(st.BucketsRead)
		w.I64(st.BytesWritten)
		w.I64(st.BytesRead)
		w.I64(st.Flushes)
		w.I64(st.BytesRaw)
		w.I64(st.BytesEncoded)
		w.I64(st.PrefetchIssued)
		w.I64(st.PrefetchHits)
		w.I64(st.PrefetchWasted)
	}
	if present&msgHasTrace != 0 {
		w.I64(int64(m.TraceID))
		w.U32(uint32(len(m.Spans)))
		for i := range m.Spans {
			sp := &m.Spans[i]
			w.I64(int64(sp.Parent))
			w.I64(int64(sp.Node))
			w.I64(sp.DurNanos)
			w.String(sp.Name)
			w.Strings(sp.Keys)
			w.I64s(sp.Vals)
		}
	}
	if present&msgHasMetrics != 0 {
		w.U32(uint32(len(m.Metrics)))
		for i := range m.Metrics {
			s := &m.Metrics[i]
			w.String(s.Name)
			w.String(s.Label)
			w.F64(s.Value)
		}
	}
	if present&msgHasPreds != 0 {
		w.U32(uint32(len(m.Preds)))
		for i := range m.Preds {
			p := &m.Preds[i]
			w.I64(int64(p.Attr))
			w.String(p.Op)
			encodePredValue(w, p.Val)
		}
		w.I64(m.Skipped)
	}
	var present2 uint8
	if len(m.Chunks) > 0 {
		present2 |= msg2HasChunks
	}
	if m.Path != "" || m.Adaptor != "" {
		present2 |= msg2HasInsitu
	}
	if len(m.ExclLo) > 0 || m.RouteVersion != 0 || len(m.Nodes) > 0 || m.Release {
		if len(m.ExclLo) != len(m.ExclHi) {
			return nil, fmt.Errorf("cluster: message has %d exclude lows but %d highs", len(m.ExclLo), len(m.ExclHi))
		}
		present2 |= msg2HasRoute
	}
	if len(m.Heat) > 0 {
		present2 |= msg2HasHeat
	}
	if present2 != 0 {
		w.U8(present2)
		if present2&msg2HasChunks != 0 {
			w.U32(uint32(len(m.Chunks)))
			for _, c := range m.Chunks {
				w.Bytes(c)
			}
		}
		if present2&msg2HasInsitu != 0 {
			w.String(m.Path)
			w.String(m.Adaptor)
		}
		if present2&msg2HasRoute != 0 {
			w.U32(uint32(len(m.ExclLo)))
			for i := range m.ExclLo {
				w.I64s(m.ExclLo[i])
				w.I64s(m.ExclHi[i])
			}
			w.I64(m.RouteVersion)
			w.I64s(m.Nodes)
			w.Bool(m.Release)
		}
		if present2&msg2HasHeat != 0 {
			w.U32(uint32(len(m.Heat)))
			for i := range m.Heat {
				h := &m.Heat[i]
				w.String(h.Array)
				w.I64s(h.Origin)
				w.F64(h.Score)
			}
		}
	}
	if w.Err() != nil {
		return nil, w.Err()
	}
	return b.Bytes(), nil
}

// decodeMessage reverses encodeMessage.
func decodeMessage(data []byte) (*Message, error) {
	r := storage.NewFieldReaderBytes(data)
	m := &Message{}
	m.Op = r.String()
	m.Array = r.String()
	m.Array2 = r.String()
	m.Err = r.String()
	m.Agg = r.String()
	m.Attr = r.String()
	m.GroupDims = r.Strings()
	m.OnL = r.Strings()
	m.OnR = r.Strings()
	m.Cells = r.I64()
	m.BoxLo = r.I64s()
	m.BoxHi = r.I64s()
	m.Payload = r.Bytes()
	if n := int(r.U32()); n > 0 && r.Err() == nil {
		if n > MaxFrameBody/8 {
			return nil, fmt.Errorf("cluster: message has %d partials", n)
		}
		m.Partials = make([]Partial, n)
		for i := range m.Partials {
			p := &m.Partials[i]
			p.Key = r.I64s()
			p.Sum = r.F64()
			p.SumSq = r.F64()
			p.Count = r.I64()
			p.Min = r.F64()
			p.Max = r.F64()
		}
	}
	present := r.U8()
	if r.Err() != nil {
		return nil, fmt.Errorf("cluster: corrupt message: %w", r.Err())
	}
	if present&msgHasSchema != 0 {
		s, err := DecodeSchema(r)
		if err != nil {
			return nil, err
		}
		m.Schema = s
	}
	if present&msgHasStats != 0 {
		m.Stats = &WorkerStats{
			CellsHeld:    r.I64(),
			CellsScanned: r.I64(),
			BytesIn:      r.I64(),
			BytesOut:     r.I64(),
			Requests:     r.I64(),
		}
	}
	if present&msgHasCache != 0 {
		m.Cache = &bufcache.Stats{
			Hits:          r.I64(),
			Misses:        r.I64(),
			Loads:         r.I64(),
			Evictions:     r.I64(),
			Invalidations: r.I64(),
			Entries:       r.I64(),
			BytesResident: r.I64(),
			PinnedBytes:   r.I64(),
			Budget:        r.I64(),
		}
	}
	if present&msgHasExec != 0 {
		m.Exec = &exec.Stats{
			Parallelism:     int(r.I64()),
			TasksRun:        r.I64(),
			ChunksProcessed: r.I64(),
			ParallelRuns:    r.I64(),
			SerialRuns:      r.I64(),
			Saturation:      r.I64(),
		}
	}
	if present&msgHasStore != 0 {
		m.Store = &storage.Stats{
			BucketsWritten: r.I64(),
			BucketsMerged:  r.I64(),
			BucketsRead:    r.I64(),
			BytesWritten:   r.I64(),
			BytesRead:      r.I64(),
			Flushes:        r.I64(),
			BytesRaw:       r.I64(),
			BytesEncoded:   r.I64(),
			PrefetchIssued: r.I64(),
			PrefetchHits:   r.I64(),
			PrefetchWasted: r.I64(),
		}
	}
	if present&msgHasTrace != 0 {
		m.TraceID = uint64(r.I64())
		n := int(r.U32())
		if r.Err() != nil {
			return nil, fmt.Errorf("cluster: corrupt message: %w", r.Err())
		}
		if n > MaxFrameBody/16 {
			return nil, fmt.Errorf("cluster: message has %d spans", n)
		}
		m.Spans = make([]obs.SpanData, n)
		for i := range m.Spans {
			sp := &m.Spans[i]
			sp.Parent = int32(r.I64())
			sp.Node = int32(r.I64())
			sp.DurNanos = r.I64()
			sp.Name = r.String()
			sp.Keys = r.Strings()
			sp.Vals = r.I64s()
		}
	}
	if present&msgHasMetrics != 0 {
		n := int(r.U32())
		if r.Err() != nil {
			return nil, fmt.Errorf("cluster: corrupt message: %w", r.Err())
		}
		if n > MaxFrameBody/16 {
			return nil, fmt.Errorf("cluster: message has %d metric samples", n)
		}
		m.Metrics = make([]obs.Sample, n)
		for i := range m.Metrics {
			s := &m.Metrics[i]
			s.Name = r.String()
			s.Label = r.String()
			s.Value = r.F64()
		}
	}
	if present&msgHasPreds != 0 {
		n := int(r.U32())
		if r.Err() != nil {
			return nil, fmt.Errorf("cluster: corrupt message: %w", r.Err())
		}
		if n > MaxFrameBody/16 {
			return nil, fmt.Errorf("cluster: message has %d predicates", n)
		}
		m.Preds = make([]array.ZonePred, n)
		for i := range m.Preds {
			p := &m.Preds[i]
			p.Attr = int(r.I64())
			p.Op = r.String()
			p.Val = decodePredValue(r)
		}
		m.Skipped = r.I64()
	}
	if r.Remaining() > 0 {
		present2 := r.U8()
		if present2&msg2HasChunks != 0 {
			n := int(r.U32())
			if r.Err() != nil {
				return nil, fmt.Errorf("cluster: corrupt message: %w", r.Err())
			}
			if n > MaxFrameBody/8 {
				return nil, fmt.Errorf("cluster: message has %d chunk payloads", n)
			}
			m.Chunks = make([][]byte, n)
			for i := range m.Chunks {
				m.Chunks[i] = r.Bytes()
				if r.Err() != nil {
					return nil, fmt.Errorf("cluster: corrupt message: %w", r.Err())
				}
			}
		}
		if present2&msg2HasInsitu != 0 {
			m.Path = r.String()
			m.Adaptor = r.String()
		}
		if present2&msg2HasRoute != 0 {
			n := int(r.U32())
			if r.Err() != nil {
				return nil, fmt.Errorf("cluster: corrupt message: %w", r.Err())
			}
			if n > MaxFrameBody/16 {
				return nil, fmt.Errorf("cluster: message has %d exclude boxes", n)
			}
			if n > 0 {
				m.ExclLo = make([][]int64, n)
				m.ExclHi = make([][]int64, n)
				for i := 0; i < n; i++ {
					m.ExclLo[i] = r.I64s()
					m.ExclHi[i] = r.I64s()
					if r.Err() != nil {
						return nil, fmt.Errorf("cluster: corrupt message: %w", r.Err())
					}
				}
			}
			m.RouteVersion = r.I64()
			m.Nodes = r.I64s()
			m.Release = r.Bool()
		}
		if present2&msg2HasHeat != 0 {
			n := int(r.U32())
			if r.Err() != nil {
				return nil, fmt.Errorf("cluster: corrupt message: %w", r.Err())
			}
			if n > MaxFrameBody/16 {
				return nil, fmt.Errorf("cluster: message has %d heat samples", n)
			}
			if n > 0 {
				m.Heat = make([]HeatSample, n)
				for i := range m.Heat {
					h := &m.Heat[i]
					h.Array = r.String()
					h.Origin = r.I64s()
					h.Score = r.F64()
					if r.Err() != nil {
						return nil, fmt.Errorf("cluster: corrupt message: %w", r.Err())
					}
				}
			}
		}
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("cluster: corrupt message: %w", r.Err())
	}
	return m, nil
}

// EncodeSchema writes a schema, recursing into nested-array attributes.
func EncodeSchema(w *storage.FieldWriter, s *array.Schema) {
	w.String(s.Name)
	w.Bool(s.Updatable)
	w.U32(uint32(len(s.Dims)))
	for _, d := range s.Dims {
		w.String(d.Name)
		w.I64(d.High)
		w.I64(d.ChunkLen)
	}
	w.U32(uint32(len(s.Attrs)))
	for _, a := range s.Attrs {
		w.String(a.Name)
		w.U8(uint8(a.Type))
		w.Bool(a.Uncertain)
		w.Bool(a.Nested != nil)
		if a.Nested != nil {
			EncodeSchema(w, a.Nested)
		}
	}
}

// DecodeSchema reverses EncodeSchema.
func DecodeSchema(r *storage.FieldReader) (*array.Schema, error) {
	s := &array.Schema{}
	s.Name = r.String()
	s.Updatable = r.Bool()
	nd := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nd > 1<<16 {
		return nil, fmt.Errorf("cluster: schema has %d dimensions", nd)
	}
	s.Dims = make([]array.Dimension, nd)
	for i := range s.Dims {
		s.Dims[i].Name = r.String()
		s.Dims[i].High = r.I64()
		s.Dims[i].ChunkLen = r.I64()
	}
	na := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if na > 1<<16 {
		return nil, fmt.Errorf("cluster: schema has %d attributes", na)
	}
	s.Attrs = make([]array.Attribute, na)
	for i := range s.Attrs {
		s.Attrs[i].Name = r.String()
		s.Attrs[i].Type = array.Type(r.U8())
		s.Attrs[i].Uncertain = r.Bool()
		if r.Bool() {
			nested, err := DecodeSchema(r)
			if err != nil {
				return nil, err
			}
			s.Attrs[i].Nested = nested
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	return s, r.Err()
}
