package cluster

import (
	"context"
	"testing"

	"scidb/internal/array"
	"scidb/internal/partition"
)

// persistGrid builds a 4-node in-process grid with store-backed partitions
// sharing one buffer pool.
func persistGrid(t *testing.T, nodes int) (*Local, *Coordinator) {
	t.Helper()
	tr := NewLocalWithOptions(nodes, LocalOptions{
		Persist:    true,
		Dir:        t.TempDir(),
		Stride:     []int64{8, 8},
		CacheBytes: 8 << 20,
	})
	t.Cleanup(func() { _ = tr.Close() })
	return tr, NewCoordinator(tr, 0)
}

// TestPersistClusterRoundTrip runs the full op set against store-backed
// partitions: create / put / scan / agg / count / sjoin / replace / drop.
func TestPersistClusterRoundTrip(t *testing.T) {
	tr, co := persistGrid(t, 4)
	scheme := partition.Block{Nodes: 4, SplitDim: 0, High: 16}
	if err := co.Create("sky", gridSchema(), scheme); err != nil {
		t.Fatal(err)
	}
	loadGrid(t, co, "sky", 16)

	// Every worker actually went through a store, not a plain array.
	for i, w := range tr.Workers {
		w.mu.RLock()
		_, isStore := w.stores["sky"]
		nArrays := len(w.arrays)
		w.mu.RUnlock()
		if !isStore || nArrays != 0 {
			t.Fatalf("node %d: store=%v arrays=%d; want store-backed only", i, isStore, nArrays)
		}
	}

	if n, err := co.Count("sky"); err != nil || n != 256 {
		t.Fatalf("Count = %d,%v; want 256", n, err)
	}
	res, err := co.Scan("sky", array.NewBox(array.Coord{1, 1}, array.Coord{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 16 {
		t.Errorf("scan cells = %d, want 16", res.Count())
	}
	if cell, ok := res.At(array.Coord{3, 4}); !ok || cell[0].Float != 7 {
		t.Errorf("scan cell = %v,%v; want 7", cell, ok)
	}

	// Distributed aggregate over the stores.
	agg, err := co.Aggregate("sky", array.NewBox(array.Coord{1, 1}, array.Coord{16, 16}), "sum", "flux", nil)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := agg.At(array.Coord{1})
	if !ok || cell[0].Float != 4352 { // sum of (i+j) over 16x16
		t.Errorf("sum = %v,%v; want 4352", cell, ok)
	}

	// Co-partitioned join runs node-locally over materialized stores.
	if err := co.Create("sky2", gridSchema(), scheme); err != nil {
		t.Fatal(err)
	}
	loadGrid(t, co, "sky2", 16)
	joined, err := co.Sjoin("sky", "sky2", []string{"x", "y"}, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if joined.Count() != 256 {
		t.Errorf("join cells = %d, want 256", joined.Count())
	}

	// Repartition exercises the replace path (store teardown + rebuild).
	if err := co.Repartition("sky", partition.Block{Nodes: 4, SplitDim: 1, High: 16}); err != nil {
		t.Fatal(err)
	}
	if n, err := co.Count("sky"); err != nil || n != 256 {
		t.Fatalf("post-repartition Count = %d,%v; want 256", n, err)
	}
	if cell, ok, err := workerGet(tr, "sky", array.Coord{3, 4}); err != nil || !ok || cell[0].Float != 7 {
		t.Errorf("post-repartition cell(3,4) = %v,%v,%v; want 7", cell, ok, err)
	}

	// Drop removes the partitions everywhere.
	for n := range tr.Workers {
		if _, err := tr.Call(n, &Message{Op: "drop", Array: "sky2"}); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range tr.Workers {
		w.mu.RLock()
		_, still := w.stores["sky2"]
		w.mu.RUnlock()
		if still {
			t.Errorf("node %d still holds dropped array", i)
		}
	}
}

// workerGet scans all nodes for one coordinate (test helper).
func workerGet(tr *Local, name string, c array.Coord) (array.Cell, bool, error) {
	for _, w := range tr.Workers {
		w.mu.RLock()
		st, ok := w.stores[name]
		w.mu.RUnlock()
		if !ok {
			continue
		}
		cell, found, err := st.Get(c)
		if err != nil {
			return nil, false, err
		}
		if found {
			return cell, true, nil
		}
	}
	return nil, false, nil
}

// TestClusterSharedPoolWarmScan: scanning the same box twice serves the
// second pass from the shared pool — observable through the cachestats op.
func TestClusterSharedPoolWarmScan(t *testing.T) {
	tr, co := persistGrid(t, 2)
	scheme := partition.Block{Nodes: 2, SplitDim: 0, High: 16}
	if err := co.Create("sky", gridSchema(), scheme); err != nil {
		t.Fatal(err)
	}
	loadGrid(t, co, "sky", 16)
	// Push buffered cells into buckets so scans go through the pool.
	for _, w := range tr.Workers {
		w.mu.RLock()
		st := w.stores["sky"]
		w.mu.RUnlock()
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	box := array.NewBox(array.Coord{1, 1}, array.Coord{16, 16})
	if _, err := co.Scan("sky", box); err != nil {
		t.Fatal(err)
	}
	cold, err := co.CacheStats()
	if err != nil {
		t.Fatal(err)
	}
	if cold[0].Loads == 0 {
		t.Fatalf("cold scan loaded nothing through the pool: %+v", cold[0])
	}
	// All in-process nodes share one pool: every node reports it.
	if cold[1] != cold[0] {
		t.Errorf("nodes report different pools: %+v vs %+v", cold[0], cold[1])
	}

	if _, err := co.Scan("sky", box); err != nil {
		t.Fatal(err)
	}
	warm, err := co.CacheStats()
	if err != nil {
		t.Fatal(err)
	}
	if warm[0].Loads != cold[0].Loads {
		t.Errorf("warm scan re-loaded buckets: %d -> %d loads", cold[0].Loads, warm[0].Loads)
	}
	if warm[0].Hits <= cold[0].Hits {
		t.Errorf("warm scan produced no pool hits: %+v", warm[0])
	}
	if warm[0].PinnedBytes != 0 {
		t.Errorf("pinned bytes leaked: %d", warm[0].PinnedBytes)
	}
}

// TestCacheStatsOpUncached: array-backed workers answer cachestats with the
// zero snapshot rather than an error.
func TestCacheStatsOpUncached(t *testing.T) {
	tr := NewLocal(1)
	co := NewCoordinator(tr, 0)
	stats, err := co.CacheStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Budget != 0 || stats[0].Hits != 0 {
		t.Errorf("uncached node reported %+v, want zero value", stats[0])
	}
}

// TestClusterScanPruned exercises the predicated scan fan-out: workers
// skip whole buckets whose zone maps refute the conjuncts, filter the
// survivors cell-by-cell, and report how many buckets were never read.
func TestClusterScanPruned(t *testing.T) {
	_, co := persistGrid(t, 4)
	scheme := partition.Block{Nodes: 4, SplitDim: 0, High: 16}
	if err := co.Create("sky", gridSchema(), scheme); err != nil {
		t.Fatal(err)
	}
	loadGrid(t, co, "sky", 16) // flux = x + y, so per-bucket ranges differ

	// flux > 24 holds only in the high-x, high-y corner: of the eight
	// 8x8-stride buckets (two per node), six have max <= 24 and are
	// skipped; the two survivors are filtered cell-by-cell.
	box := array.NewBox(array.Coord{1, 1}, array.Coord{16, 16})
	preds := []array.ZonePred{{Attr: 0, Op: ">", Val: array.Float64(24)}}
	res, skipped, err := co.ScanPruned(context.Background(), "sky", box, preds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 36 { // pairs (i,j) in [9,16]^2 with i+j > 24
		t.Errorf("pruned scan cells = %d, want 36", res.Count())
	}
	if skipped != 6 {
		t.Errorf("buckets skipped = %d, want 6", skipped)
	}
	res.Iter(func(c array.Coord, cell array.Cell) bool {
		if cell[0].Float != float64(c[0]+c[1]) || cell[0].Float <= 24 {
			t.Errorf("cell %v = %v violates predicate", c, cell[0])
			return false
		}
		return true
	})

	// Array-backed partitions take the same wire path: per-cell filtering,
	// nothing to skip.
	tr2 := NewLocal(2)
	defer tr2.Close()
	co2 := NewCoordinator(tr2, 0)
	if err := co2.Create("sky", gridSchema(), partition.Block{Nodes: 2, SplitDim: 0, High: 16}); err != nil {
		t.Fatal(err)
	}
	loadGrid(t, co2, "sky", 16)
	res, skipped, err = co2.ScanPruned(context.Background(), "sky", box, preds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 36 || skipped != 0 {
		t.Errorf("array-backed pruned scan = %d cells, %d skipped; want 36, 0", res.Count(), skipped)
	}
}
