package cluster

// Per-chunk access-heat tracking for online rebalancing. Every bucket read
// on a store-backed partition (cache hit or miss — the storage layer's
// OnBucketRead hook fires from the single read funnel) and every in-situ
// chunk materialization touches the worker's tracker. Scores decay
// exponentially, so heat reflects the recent workload, not lifetime
// totals: a telescope that moves on cools the chunks it leaves behind.
// The coordinator's rebalancer polls trackers over the "heat" wire op and
// migrates or replicates the hottest chunks.

import (
	"math"
	"sort"
	"sync"
	"time"

	"scidb/internal/array"
)

// HeatSample is one chunk's decayed access score, as reported by the
// "heat" wire op: the chunk at Origin of array Array has accumulated
// Score (decayed touches) on the reporting node.
type HeatSample struct {
	Array  string
	Origin []int64
	Score  float64
}

// defaultHeatHalfLife is how long a chunk's score takes to halve with no
// further touches when WorkerOptions leaves it unset.
const defaultHeatHalfLife = 30 * time.Second

// heatTracker accumulates exponentially-decayed per-chunk access scores.
// Safe for concurrent use; Touch is called with store locks held, so it
// does nothing but its own map upkeep.
type heatTracker struct {
	halfLife time.Duration
	now      func() time.Time // test seam

	mu      sync.Mutex
	entries map[string]*heatEntry
	touches int64
}

type heatEntry struct {
	array  string
	origin array.Coord
	score  float64
	last   time.Time
}

func newHeatTracker(halfLife time.Duration) *heatTracker {
	if halfLife <= 0 {
		halfLife = defaultHeatHalfLife
	}
	return &heatTracker{halfLife: halfLife, now: time.Now, entries: map[string]*heatEntry{}}
}

// decayTo folds elapsed time into the entry's score.
func (t *heatTracker) decayTo(e *heatEntry, now time.Time) {
	if dt := now.Sub(e.last); dt > 0 {
		e.score *= math.Exp2(-float64(dt) / float64(t.halfLife))
		e.last = now
	}
}

// Touch adds weight to the chunk at origin of the named array.
func (t *heatTracker) Touch(name string, origin array.Coord, weight float64) {
	key := name + "\x00" + origin.Key()
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touches++
	e, ok := t.entries[key]
	if !ok {
		e = &heatEntry{array: name, origin: origin.Clone(), last: now}
		t.entries[key] = e
	}
	t.decayTo(e, now)
	e.score += weight
}

// Snapshot returns every tracked chunk's decayed score in deterministic
// (array, origin) order, dropping entries that have cooled to noise.
func (t *heatTracker) Snapshot() []HeatSample {
	now := t.now()
	t.mu.Lock()
	out := make([]HeatSample, 0, len(t.entries))
	for key, e := range t.entries {
		t.decayTo(e, now)
		if e.score < 1.0/1024 {
			delete(t.entries, key) // cold for many half-lives: forget it
			continue
		}
		out = append(out, HeatSample{Array: e.array, Origin: append([]int64(nil), e.origin...), Score: e.score})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Array != out[j].Array {
			return out[i].Array < out[j].Array
		}
		a, b := out[i].Origin, out[j].Origin
		for k := range a {
			if k >= len(b) || a[k] != b[k] {
				return k < len(b) && a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// stats reports tracker-level gauges for the worker registry.
func (t *heatTracker) stats() (chunks int, total float64, touches int64) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		t.decayTo(e, now)
		total += e.score
	}
	return len(t.entries), total, t.touches
}

// Drop forgets every entry for the named array (drop/replace of the
// partition invalidates its heat history).
func (t *heatTracker) Drop(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, e := range t.entries {
		if e.array == name {
			delete(t.entries, key)
		}
	}
}
