package cluster

// Failure-injection tests for the coordinator's recovery paths: a node that
// dies while the coordinator holds co.mu (Repartition's gather, the
// rebalancer's fenced re-copy) must produce an error, never a wedge; failed
// moves must not grow the pending set; and a replica lost to node death must
// be re-created on a live node.

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"scidb/internal/array"
	"scidb/internal/partition"
)

// hookTransport wraps Local, letting tests observe calls or fail them before
// they reach a worker.
type hookTransport struct {
	*Local
	mu     sync.Mutex
	before func(node int, req *Message) error
}

func (h *hookTransport) setBefore(fn func(int, *Message) error) {
	h.mu.Lock()
	h.before = fn
	h.mu.Unlock()
}

func (h *hookTransport) Call(node int, req *Message) (*Message, error) {
	h.mu.Lock()
	fn := h.before
	h.mu.Unlock()
	if fn != nil {
		if err := fn(node, req); err != nil {
			return nil, err
		}
	}
	return h.Local.Call(node, req)
}

// hookedCluster is rebalanceCluster with a hookTransport between the
// coordinator and the grid.
func hookedCluster(t *testing.T) (*Local, *hookTransport, *Coordinator) {
	t.Helper()
	tr := NewLocalWithOptions(3, LocalOptions{Persist: true, Stride: []int64{8}, CacheBytes: 1 << 20})
	t.Cleanup(func() { tr.Close() })
	hook := &hookTransport{Local: tr}
	co := NewCoordinator(hook, 0)
	schema := &array.Schema{
		Name:  "sky",
		Dims:  []array.Dimension{{Name: "x", High: 48, ChunkLen: 8}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
	if err := co.Create("sky", schema, partition.Block{Nodes: 3, SplitDim: 0, High: 48}); err != nil {
		t.Fatal(err)
	}
	for x := int64(1); x <= 48; x++ {
		if err := co.Put("sky", array.Coord{x}, array.Cell{array.Float64(float64(x * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := co.Flush("sky"); err != nil {
		t.Fatal(err)
	}
	return tr, hook, co
}

// TestRepartitionNodeDeathReturns: a node dying during Repartition's gather
// (which runs its fan-out under co.mu) must surface ErrNodeDown, mark the
// node down, and leave the coordinator answering — not self-deadlock in
// markDown.
func TestRepartitionNodeDeathReturns(t *testing.T) {
	tr, co := rebalanceCluster(t)
	tr.Kill(2)
	done := make(chan error, 1)
	go func() {
		done <- co.Repartition("sky", partition.Block{Nodes: 3, SplitDim: 0, High: 48})
	}()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, ErrNodeDown) {
			t.Fatalf("Repartition with a dead node: %v; want ErrNodeDown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Repartition wedged on node death (markDown self-deadlock)")
	}
	if down := co.DownNodes(); len(down) != 1 || down[0] != 2 {
		t.Fatalf("DownNodes = %v; want [2]", down)
	}
	tr.Revive(2)
	co.MarkUp(2)
	verifySky(t, co, skyBox)
}

// TestRebalanceRecopyNodeDeathReturns: the source dying between a
// migration's unlocked copy and its fenced re-copy (which runs under co.mu)
// must fail the round with ErrNodeDown, not wedge the coordinator, and the
// cluster must heal once the node revives.
func TestRebalanceRecopyNodeDeathReturns(t *testing.T) {
	tr, hook, co := hookedCluster(t)
	if _, err := co.EnableRouting("sky", nil); err != nil {
		t.Fatal(err)
	}
	heatUp(t, co, 20)
	var hookErr error
	var once sync.Once
	hook.setBefore(func(node int, req *Message) error {
		if req.Op == "replicachunk" {
			once.Do(func() {
				// The export already ran: dirty the write fence with a
				// value-preserving Put on a live node's slab so cutover
				// must re-copy under co.mu, then kill the source so that
				// locked re-export hits a dead node.
				hookErr = co.Put("sky", array.Coord{47}, array.Cell{array.Float64(470)})
				tr.Kill(0)
			})
		}
		return nil
	})
	done := make(chan error, 1)
	go func() {
		_, _, err := co.RebalanceOnce("sky", RebalanceOptions{TopK: 1})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, ErrNodeDown) {
			t.Fatalf("mid-migration source death: %v; want ErrNodeDown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RebalanceOnce wedged on node death during fenced re-copy")
	}
	if hookErr != nil {
		t.Fatal(hookErr)
	}
	if down := co.DownNodes(); len(down) != 1 || down[0] != 0 {
		t.Fatalf("DownNodes = %v; want [0]", down)
	}
	hook.setBefore(nil)
	tr.Revive(0)
	co.MarkUp(0)
	verifySky(t, co, skyBox)
}

// TestPendingDedupeOnFailedMoves: a move whose install keeps failing leaves
// exactly one pending entry for its chunk however many rounds retry it, the
// orphaned entry keeps queries correct meanwhile, and a successful retry
// drains it.
func TestPendingDedupeOnFailedMoves(t *testing.T) {
	_, hook, co := hookedCluster(t)
	if _, err := co.EnableRouting("sky", nil); err != nil {
		t.Fatal(err)
	}
	failErr := errors.New("install refused")
	hook.setBefore(func(node int, req *Message) error {
		if req.Op == "replicachunk" {
			return failErr
		}
		return nil
	})
	for i := 0; i < 3; i++ {
		heatUp(t, co, 5)
		if _, _, err := co.RebalanceOnce("sky", RebalanceOptions{TopK: 1}); err == nil {
			t.Fatal("rebalance round with a failing install should error")
		}
	}
	co.mu.Lock()
	n := len(co.pending["sky"])
	co.mu.Unlock()
	if n != 1 {
		t.Fatalf("pending entries after 3 failed moves = %d; want 1 (deduped by origin)", n)
	}
	verifySky(t, co, skyBox)
	// Clearing the fault lets a retry reuse the orphaned entry and drain it.
	hook.setBefore(nil)
	heatUp(t, co, 5)
	moved, _, err := co.RebalanceOnce("sky", RebalanceOptions{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("retry after clearing the fault moved %d chunks; want 1", moved)
	}
	co.mu.Lock()
	n = len(co.pending["sky"])
	co.mu.Unlock()
	if n != 0 {
		t.Fatalf("pending entries after successful retry = %d; want 0", n)
	}
	verifySky(t, co, skyBox)
}

// TestReplicateHealsAfterHolderDeath: a replica lost to node death must not
// count toward the replication target — the next round re-creates it on a
// live node and drops the dead node from the route.
func TestReplicateHealsAfterHolderDeath(t *testing.T) {
	tr, co := rebalanceCluster(t)
	rt, err := co.EnableRouting("sky", nil)
	if err != nil {
		t.Fatal(err)
	}
	heatUp(t, co, 20)
	if _, replicated, err := co.RebalanceOnce("sky", RebalanceOptions{TopK: 1, Replicas: 2}); err != nil || replicated != 1 {
		t.Fatalf("first round replicated %d, %v; want 1", replicated, err)
	}
	holders := rt.NodesFor(array.Coord{1})
	if len(holders) != 2 {
		t.Fatalf("replica set = %v; want 2 holders", holders)
	}
	dead := holders[1] // the freshly installed replica
	tr.Kill(dead)
	co.markDown(dead)
	heatUp(t, co, 10) // reads re-heat the chunk via the surviving holder
	if _, replicated, err := co.RebalanceOnce("sky", RebalanceOptions{TopK: 1, Replicas: 2}); err != nil || replicated != 1 {
		t.Fatalf("post-death round replicated %d, %v; want 1 (lost replica re-created)", replicated, err)
	}
	healed := rt.NodesFor(array.Coord{1})
	if len(healed) != 2 {
		t.Fatalf("healed replica set = %v; want 2 holders", healed)
	}
	for _, n := range healed {
		if n == dead {
			t.Fatalf("healed replica set %v still routes the dead node %d", healed, dead)
		}
	}
	verifySky(t, co, hotBox) // served while the dead holder stays dead
	tr.Revive(dead)
	co.MarkUp(dead)
	verifySky(t, co, skyBox)
}

// TestRepartitionDuringRebalanceStress races rebalance rounds against full
// repartitions: moveChunk and Repartition are interlocked, so an in-flight
// copy can never install pre-repartition payloads under the new scheme or
// release cells the source owns after it. Content must survive unchanged.
func TestRepartitionDuringRebalanceStress(t *testing.T) {
	_, co := rebalanceCluster(t)
	if _, err := co.EnableRouting("sky", nil); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	errc := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Rounds landing between a Repartition and the re-enable see a
			// plain Block scheme; that window is expected and harmless.
			if _, _, err := co.RebalanceOnce("sky", RebalanceOptions{TopK: 2}); err != nil &&
				!strings.Contains(err.Error(), "no routing table") {
				errc <- err
				return
			}
		}
	}()
	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	for i := 0; i < rounds; i++ {
		heatUp(t, co, 5)
		if err := co.Repartition("sky", partition.Block{Nodes: 3, SplitDim: 0, High: 48}); err != nil {
			t.Fatal(err)
		}
		if _, err := co.EnableRouting("sky", nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	verifySky(t, co, skyBox)
	if n, err := co.Count("sky"); err != nil || n != 48 {
		t.Fatalf("count = %d, %v; want 48", n, err)
	}
}
