package cluster

// Worker-side halves of online rebalancing (live migration and hot-chunk
// replication). Three wire ops:
//
//	"heat"          — report the node's decayed per-chunk access scores.
//	"migratechunks" — export a chunk-box region of a store-backed partition
//	                  as encoded chunk payloads (the migration wire unit);
//	                  with Release set, skip the export and just drop the
//	                  region's buffer-pool entries and buffered cells
//	                  (post-cutover source release).
//	"replicachunk"  — adopt exported payloads verbatim into the local store
//	                  (storage.AdoptEncoded: the copy is bit-identical) and
//	                  remember the routing-table version it belongs to.
//
// The source never deletes its on-disk buckets: after cutover the routing
// table permanently excludes the stale copy from queries, so deletion is
// pure space reclamation and can wait for a future compaction. What must
// not wait is pool budget — Release frees it immediately.

import (
	"fmt"

	"scidb/internal/array"
	"scidb/internal/storage"
)

// heatOp reports the node's chunk heat snapshot.
func (w *Worker) heatOp(req *Message) (*Message, error) {
	return &Message{Op: "heat", Heat: w.heat.Snapshot()}, nil
}

// migrateChunks exports the encoded chunks of req.Array inside the request
// box. Only store-backed partitions migrate — they are the ones with
// bucket-grained placement worth moving.
func (w *Worker) migrateChunks(req *Message) (*Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.stores[req.Array]
	if !ok {
		return nil, fmt.Errorf("cluster: node %d: migratechunks needs a store-backed partition %q", w.ID, req.Array)
	}
	if len(req.BoxLo) == 0 {
		return nil, fmt.Errorf("cluster: migratechunks without a chunk box")
	}
	box := array.Box{Lo: req.BoxLo, Hi: req.BoxHi}
	if req.Release {
		// Post-cutover source release: pool entries go immediately, and any
		// cells still sitting in the memory buffer are cleared so a later
		// spill cannot resurrect route-excluded data as a newest bucket.
		// The caller discards payloads on this path, so skip the export —
		// re-encoding a just-migrated (recently hot) region only to throw
		// it away is pure wasted CPU on the source.
		st.ReleaseRegion(box)
		st.ClearRegion(box)
		return &Message{Op: "migratechunks"}, nil
	}
	payloads, cells, err := st.ExportRegion(box)
	if err != nil {
		return nil, err
	}
	var bytes int64
	for _, p := range payloads {
		bytes += int64(len(p))
	}
	w.stats.BytesOut += bytes
	return &Message{Op: "migratechunks", Chunks: payloads, Cells: cells}, nil
}

// replicaChunk adopts exported chunk payloads verbatim as local buckets.
func (w *Worker) replicaChunk(req *Message) (*Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.stores[req.Array]
	if !ok {
		return nil, fmt.Errorf("cluster: node %d: replicachunk needs a store-backed partition %q", w.ID, req.Array)
	}
	// The payloads are the region's canonical newest state (the
	// coordinator's write fence flushed and folded every live write before
	// exporting). Clear any buffered cells left over from an earlier
	// ownership stint first — the memory buffer outranks every bucket on
	// reads, so a stale cell would shadow the adopted copy; the request box
	// covers sub-chunks the canonical copy holds no cells for.
	if len(req.BoxLo) > 0 {
		st.ClearRegion(array.Box{Lo: req.BoxLo, Hi: req.BoxHi})
	}
	var cells, bytesIn int64
	for _, payload := range req.Chunks {
		ch, err := storage.DecodeChunk(st.Schema(), payload)
		if err != nil {
			return nil, err
		}
		if len(req.BoxLo) == 0 {
			st.ClearRegion(ch.Box())
		}
		if err := st.AdoptEncoded(payload, ch); err != nil {
			return nil, err
		}
		cells += ch.CellsPresent()
		bytesIn += int64(len(payload))
	}
	if w.routeVersion == nil {
		w.routeVersion = map[string]int64{}
	}
	if req.RouteVersion > w.routeVersion[req.Array] {
		w.routeVersion[req.Array] = req.RouteVersion
	}
	w.stats.CellsHeld += cells
	w.stats.BytesIn += bytesIn
	return &Message{Op: "replicachunk", Cells: cells, RouteVersion: w.routeVersion[req.Array]}, nil
}

// RouteVersion returns the newest routing-table version a replicachunk
// install on this node has carried for the named array (0 = none).
func (w *Worker) RouteVersion(name string) int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.routeVersion[name]
}
