package cluster

import (
	"reflect"
	"testing"
)

// FuzzDecodeClusterMessage feeds arbitrary bytes to decodeMessage: it must
// return an error or a message, never panic or over-allocate on a poisoned
// length prefix; a successful decode must survive an encode/decode round
// trip unchanged. The seeds cover the full field set (including the route
// and heat blocks added for online rebalancing), truncations, and a
// bit-flipped frame, so the fuzzer starts inside every block decoder.
func FuzzDecodeClusterMessage(f *testing.F) {
	for _, m := range []*Message{
		wireTestMessage(),
		{},
		{Op: "ping"},
		{Op: "migratechunks", Array: "a", BoxLo: []int64{1}, BoxHi: []int64{64}, Release: true},
		{Op: "replicachunk", Array: "a", RouteVersion: 3, Nodes: []int64{0, 2},
			Chunks: [][]byte{{0x01}}},
		{Op: "heat", Heat: []HeatSample{{Array: "a", Origin: []int64{1, 65}, Score: 7}}},
	} {
		enc, err := encodeMessage(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
		mut := append([]byte(nil), enc...)
		mut[len(mut)/2] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMessage(data)
		if err != nil {
			return
		}
		enc, err := encodeMessage(m)
		if err != nil {
			t.Fatalf("decoded message fails to re-encode: %v", err)
		}
		back, err := decodeMessage(enc)
		if err != nil {
			t.Fatalf("re-encoded message fails to decode: %v", err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("re-encode round trip mismatch:\n in: %+v\nout: %+v", m, back)
		}
	})
}
