package cluster

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"scidb/internal/array"
	"scidb/internal/obs"
	"scidb/internal/partition"
)

// traceShape strips timings from a flattened span tree so profile trees can
// be compared across transports: structure, names, node tags, and counters
// must agree exactly; only wall times may differ.
func traceShape(root *obs.Span) []obs.SpanData {
	flat := root.Flatten()
	for i := range flat {
		flat[i].DurNanos = 0
	}
	return flat
}

// runTracedScenario loads a 9x9 block-partitioned grid plus a co-partitioned
// sibling, then runs count, pruned scan, grouped aggregate, and sjoin under
// one trace (each call inside its own child span). Returns the profile shape.
func runTracedScenario(t *testing.T, tr Transport) []obs.SpanData {
	t.Helper()
	co := NewCoordinator(tr, 0)
	scheme := partition.Block{Nodes: 3, SplitDim: 0, High: 9}
	for name, mk := range map[string]func(i, j int64) array.Cell{
		"tleft":  func(i, j int64) array.Cell { return array.Cell{array.Float64(float64(i*10 + j))} },
		"tright": func(i, j int64) array.Cell { return array.Cell{array.Float64(float64(i - j))} },
	} {
		schema := &array.Schema{
			Name:  name,
			Dims:  []array.Dimension{{Name: "x", High: 9}, {Name: "y", High: 9}},
			Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
		}
		if err := co.Create(name, schema, scheme); err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= 9; i++ {
			for j := int64(1); j <= 9; j++ {
				if err := co.Put(name, array.Coord{i, j}, mk(i, j)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := co.Flush(name); err != nil {
			t.Fatal(err)
		}
	}

	trc := obs.NewTrace("query")
	root := trc.Root()
	ctx := obs.ContextWithSpan(context.Background(), root)

	sp, cctx := obs.StartSpan(ctx, "count")
	if n, err := co.CountCtx(cctx, "tleft"); err != nil || n != 81 {
		t.Fatalf("count = %d, %v", n, err)
	}
	sp.End()
	// The box stays inside nodes 0-1, so the pruned fan-out (and therefore
	// the profile tree) must show 2 grafted worker spans, not 3.
	sp, cctx = obs.StartSpan(ctx, "scan")
	if _, err := co.ScanCtx(cctx, "tleft", array.NewBox(array.Coord{1, 1}, array.Coord{5, 9})); err != nil {
		t.Fatal(err)
	}
	sp.End()
	sp, cctx = obs.StartSpan(ctx, "agg")
	if _, err := co.AggregateCtx(cctx, "tleft", array.NewBox(array.Coord{1, 1}, array.Coord{9, 9}), "sum", "v", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	sp.End()
	sp, cctx = obs.StartSpan(ctx, "join")
	if _, err := co.SjoinCtx(cctx, "tleft", "tright", []string{"x", "y"}, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	sp.End()
	root.End()
	return traceShape(root)
}

// TestTraceConformanceAcrossTransports pins the traced profile tree produced
// over every network transport to the Local reference: same spans, same
// parent structure, same node tags, same counters — timings aside, a user
// must not be able to tell which transport ran their query.
func TestTraceConformanceAcrossTransports(t *testing.T) {
	factories := transportFactories(t)
	refTr, refStop := factories["local"](t)
	ref := runTracedScenario(t, refTr)
	refStop()
	if len(ref) < 10 {
		t.Fatalf("reference trace has %d spans; want the full fan-out tree", len(ref))
	}
	var workers int
	for _, s := range ref {
		if s.Node >= 0 {
			workers++
		}
	}
	if workers < 3+2+3+3 {
		t.Fatalf("reference trace has %d worker spans; want at least 11 (3 count + 2 pruned scan + 3 agg + 3 sjoin)", workers)
	}
	for name, mk := range factories {
		if name == "local" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			tr, stop := mk(t)
			defer stop()
			got := runTracedScenario(t, tr)
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("profile tree shape diverges from local reference:\n got: %+v\nwant: %+v", got, ref)
			}
		})
	}
}

// TestUntracedRequestsCarryNoSpans: a plain (no TraceID) call must come back
// without trace baggage — the tracing machinery is strictly opt-in.
func TestUntracedRequestsCarryNoSpans(t *testing.T) {
	w := NewWorker(0)
	resp := w.Handle(&Message{Op: "ping"})
	if resp.TraceID != 0 || len(resp.Spans) != 0 {
		t.Fatalf("untraced ping returned TraceID=%d Spans=%d; want zero", resp.TraceID, len(resp.Spans))
	}
}

// TestLegacyPeerWireCompat pins the two properties that let old and new
// peers interoperate on the binary wire: (a) a message without trace data
// sets no new presence bits, so its encoding is byte-identical to what an
// old encoder produces; (b) the decoder ignores bytes after the blocks it
// understands, so a frame from a *newer* peer (with trailing blocks this
// build has never heard of) still decodes cleanly.
func TestLegacyPeerWireCompat(t *testing.T) {
	plain := &Message{Op: "scan", Array: "a", BoxLo: []int64{1}, BoxHi: []int64{9}}
	enc, err := encodeMessage(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0 || got.Spans != nil || got.Metrics != nil {
		t.Fatalf("plain message decoded with trace fields: %+v", got)
	}

	// Future-peer simulation: a second presence byte whose set bits are all
	// unknown to this build (0xf0 = bits 4-7; bits 0-3 are assigned) plus
	// trailing bytes beyond the known blocks must be ignored, not rejected —
	// that is exactly how a legacy decoder survives the blocks newer peers
	// append.
	future := append(append([]byte(nil), enc...), 0xf0, 0xfe, 0x00, 0x42)
	got2, err := decodeMessage(future)
	if err != nil {
		t.Fatalf("decode with unknown trailing bytes: %v", err)
	}
	if !reflect.DeepEqual(got, got2) {
		t.Errorf("trailing bytes changed the decoded message:\n got: %+v\nwant: %+v", got2, got)
	}

	// Traced messages round-trip their spans and metrics in full.
	traced := &Message{
		Op: "count", Array: "a", TraceID: 99,
		Spans: []obs.SpanData{
			{Parent: -1, Node: 1, DurNanos: 10, Name: "count",
				Keys: []string{"cells_scanned"}, Vals: []int64{81}},
		},
		Metrics: []obs.Sample{{Name: "scidb_worker_requests_total", Value: 5}},
	}
	enc2, err := encodeMessage(traced)
	if err != nil {
		t.Fatal(err)
	}
	got3, err := decodeMessage(enc2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced, got3) {
		t.Errorf("traced round trip mismatch:\n got: %+v\nwant: %+v", got3, traced)
	}
}

// TestMetricsOpAndCoordinatorMerge drives the "metrics" op over a live
// cluster and checks the coordinator's merged, node-labelled view.
func TestMetricsOpAndCoordinatorMerge(t *testing.T) {
	tr := NewLocal(2)
	defer tr.Close()
	co := NewCoordinator(tr, 0)
	schema := &array.Schema{
		Name:  "m",
		Dims:  []array.Dimension{{Name: "x", High: 8}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
	if err := co.Create("m", schema, partition.Block{Nodes: 2, SplitDim: 0, High: 8}); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 8; i++ {
		if err := co.Put("m", array.Coord{i}, array.Cell{array.Float64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := co.Flush("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Count("m"); err != nil {
		t.Fatal(err)
	}
	samples, err := co.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]bool{}
	var sawRequests bool
	for _, s := range samples {
		if !strings.Contains(s.Label, "node=") {
			t.Fatalf("sample %q lacks a node label: %q", s.Name, s.Label)
		}
		for _, part := range strings.Split(s.Label, ",") {
			if strings.HasPrefix(part, "node=") {
				nodes[part] = true
			}
		}
		if s.Name == "scidb_worker_requests_total" && s.Value > 0 {
			sawRequests = true
		}
	}
	if len(nodes) != 2 {
		t.Errorf("metrics cover %d nodes, want 2: %v", len(nodes), nodes)
	}
	if !sawRequests {
		t.Error("no nonzero scidb_worker_requests_total in merged metrics")
	}
}

// TestSlowQueryLog arms a worker's slow-request log with a zero-distance
// threshold so every request is an offender, and checks the rendered tree.
func TestSlowQueryLog(t *testing.T) {
	w := NewWorker(3)
	var buf bytes.Buffer
	w.SetSlowQuery(1, &buf) // 1ns: everything is slow
	resp := w.Handle(&Message{Op: "ping"})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow request: node 3") || !strings.Contains(out, "ping") {
		t.Fatalf("slow log missing header/tree:\n%s", out)
	}
	// Disarmed, nothing further is logged.
	w.SetSlowQuery(0, nil)
	buf.Reset()
	w.Handle(&Message{Op: "ping"})
	if buf.Len() != 0 {
		t.Fatalf("disarmed slow log still wrote: %q", buf.String())
	}
}
