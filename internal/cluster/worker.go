// Package cluster implements §2.7's grid orientation: a shared-nothing
// cluster of worker nodes coordinated over a message transport. Workers
// hold array partitions; the coordinator routes cells by a partitioning
// scheme, pushes aggregates down as combinable partials, executes
// co-partitioned joins locally without data movement, and repartitions
// arrays when the scheme changes over time (counting bytes moved, the PART
// and COPART experiments' metric).
//
// Two transports are provided: in-process (direct calls) and TCP with a
// multiplexed binary wire protocol — length-prefixed frames tagged with a
// request id, so many calls pipeline concurrently over each connection
// (see DESIGN.md's "Wire protocol" section). The legacy gob protocol is
// retained as a measured baseline (GobTCP) and servers still accept it.
// The protocol logic is identical over every transport (see DESIGN.md's
// substitution table).
package cluster

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"scidb/internal/array"
	"scidb/internal/bufcache"
	"scidb/internal/exec"
	"scidb/internal/obs"
	"scidb/internal/ops"
	"scidb/internal/storage"
)

// Message is the single request/response envelope exchanged with workers.
type Message struct {
	Op     string // "create", "put", "scan", "agg", "count", "drop", "ping", "cachestats", "execstats"
	Array  string
	Schema *array.Schema
	BoxLo  []int64
	BoxHi  []int64
	// Payload carries cells as a storage.EncodeArray blob.
	Payload   []byte
	Agg       string
	Attr      string
	GroupDims []string
	Partials  []Partial
	Cells     int64
	Err       string
	// Join fields: join req.Array with Array2 on OnL[i] = OnR[i].
	Array2 string
	OnL    []string
	OnR    []string
	// Stats response.
	Stats *WorkerStats
	// Cache is the "cachestats" response: the node's buffer-pool counters.
	Cache *bufcache.Stats
	// Exec is the "execstats" response: the node's worker-pool counters.
	Exec *exec.Stats
	// Store rides along in the "cachestats" response: the node's storage
	// counters summed over its store-backed partitions (encoding ratios,
	// prefetch hit/wasted counts, disk traffic).
	Store *storage.Stats
	// TraceID, when nonzero on a request, asks the worker to trace its
	// execution; the response echoes it and carries the worker-side span
	// tree in Spans for the coordinator to graft into the query profile.
	// Both ride a new presence bit, so legacy peers (which ignore trailing
	// message bytes and never set the bit) interoperate unchanged.
	TraceID uint64
	Spans   []obs.SpanData
	// Metrics is the "metrics" response: the node's registry snapshot.
	Metrics []obs.Sample
	// Preds, on a "scan" request, ships zone-map conjuncts: the worker
	// skips whole buckets whose zone maps refute them and filters the
	// surviving cells before shipping bytes. The response's Skipped
	// reports how many buckets were pruned without being read. Both ride
	// one presence bit, so legacy peers interoperate unchanged (they never
	// set it and ignore trailing bytes).
	Preds   []array.ZonePred
	Skipped int64
	// Chunks, on a "loadchunks" request, carries a batch of pre-encoded
	// chunk payloads (storage.EncodeChunk bytes) for the parallel bulk
	// loader: the worker adopts each as a bucket verbatim instead of
	// re-ingesting cell by cell. Rides the second presence byte; legacy
	// peers interoperate unchanged.
	Chunks [][]byte
	// Path and Adaptor, on an "insitu" request, register an external file
	// region as this node's partition of a file-backed array (distributed
	// in-situ scanning); BoxLo/BoxHi carry the node's slab. Second presence
	// byte as well.
	Path    string
	Adaptor string
	// Routing fields (online rebalancing; second presence byte, one bit).
	// ExclLo/ExclHi, on scan/agg/count requests, list grid-chunk boxes this
	// node must NOT answer — another replica is assigned them this query,
	// or the node holds a stale post-migration copy. RouteVersion and Nodes
	// ride "replicachunk": the routing-table version the installed chunk
	// belongs to and its replica node set (owner first). Release, on
	// "migratechunks", asks the source to drop the region's buffer-pool
	// entries after exporting (post-cutover cache release).
	ExclLo       [][]int64
	ExclHi       [][]int64
	RouteVersion int64
	Nodes        []int64
	Release      bool
	// Heat is the "heat" response: the node's decayed per-chunk access
	// scores (second presence byte, own bit).
	Heat []HeatSample
}

// Partial is a combinable aggregate fragment computed by one worker for one
// group. Avg is carried as Sum+Count; stdev as Sum+SumSq+Count.
type Partial struct {
	Key   []int64
	Sum   float64
	SumSq float64
	Count int64
	Min   float64
	Max   float64
}

// merge combines another partial for the same group.
func (p *Partial) merge(o Partial) {
	p.Sum += o.Sum
	p.SumSq += o.SumSq
	p.Count += o.Count
	if o.Count > 0 {
		if p.Count == o.Count { // p was empty before merge
			p.Min, p.Max = o.Min, o.Max
		} else {
			if o.Min < p.Min {
				p.Min = o.Min
			}
			if o.Max > p.Max {
				p.Max = o.Max
			}
		}
	}
}

// finalize produces the aggregate value named by agg.
func (p *Partial) finalize(agg string) (array.Value, error) {
	if p.Count == 0 {
		return array.NullValue(array.TFloat64), nil
	}
	switch agg {
	case "sum":
		return array.Float64(p.Sum), nil
	case "count":
		return array.Int64(p.Count), nil
	case "avg":
		return array.Float64(p.Sum / float64(p.Count)), nil
	case "min":
		return array.Float64(p.Min), nil
	case "max":
		return array.Float64(p.Max), nil
	case "stdev":
		if p.Count < 2 {
			return array.NullValue(array.TFloat64), nil
		}
		mean := p.Sum / float64(p.Count)
		v := (p.SumSq - float64(p.Count)*mean*mean) / float64(p.Count-1)
		if v < 0 {
			v = 0
		}
		return array.Float64(math.Sqrt(v)), nil
	}
	return array.Value{}, fmt.Errorf("cluster: aggregate %q is not distributable", agg)
}

// Worker is one shared-nothing node: a set of local array partitions, each
// backed by either a plain in-memory array (the default) or a storage.Store
// with a shared decoded-bucket pool (WorkerOptions.Persist).
type Worker struct {
	ID   int
	opts WorkerOptions

	// cache is the node's decoded-bucket pool, shared by all its
	// store-backed partitions (and, typically, by every node in-process).
	cache *bufcache.Pool

	mu      sync.RWMutex
	arrays  map[string]*array.Array
	stores  map[string]*storage.Store
	insitus map[string]*insituPart
	stats   WorkerStats

	// heat tracks decayed per-chunk access scores for the rebalancer; the
	// storage layer's OnBucketRead hook and the in-situ chunk loader feed
	// it, the "heat" wire op drains it.
	heat *heatTracker

	// routeVersion records, per array, the newest routing-table version a
	// "replicachunk" install on this node belonged to; echoed back so the
	// coordinator can confirm the install stuck (guarded by mu).
	routeVersion map[string]int64

	// reg is the node's metrics registry: worker/cache/store collectors
	// plus the request-latency histogram. The "metrics" op snapshots it so
	// a coordinator can aggregate registries cluster-wide.
	reg     *obs.Registry
	reqHist *obs.Histogram

	// Slow-request log (scidb-server -slow-query): when the threshold is
	// set, every request is traced and offenders get their profile tree
	// written to slowW.
	slowMu     sync.Mutex
	slowThresh time.Duration
	slowW      io.Writer
}

// WorkerStats counts per-node activity for the load-balance experiments.
type WorkerStats struct {
	CellsHeld    int64
	CellsScanned int64
	BytesIn      int64
	BytesOut     int64
	Requests     int64
}

// NewWorker creates an empty worker with array-backed partitions.
func NewWorker(id int) *Worker {
	return NewWorkerWithOptions(id, WorkerOptions{})
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.stats
}

// SetSlowQuery enables the worker's slow-request log: every request is
// traced and any whose wall time reaches threshold gets its profile tree
// written to out. A zero threshold disables both.
func (w *Worker) SetSlowQuery(threshold time.Duration, out io.Writer) {
	w.slowMu.Lock()
	defer w.slowMu.Unlock()
	w.slowThresh, w.slowW = threshold, out
}

func (w *Worker) slowThreshold() time.Duration {
	w.slowMu.Lock()
	defer w.slowMu.Unlock()
	return w.slowThresh
}

func (w *Worker) logSlow(op string, d time.Duration, root *obs.Span) {
	w.slowMu.Lock()
	defer w.slowMu.Unlock()
	if w.slowW == nil {
		return
	}
	fmt.Fprintf(w.slowW, "slow request: node %d op %q took %s\n", w.ID, op, d)
	root.Render(w.slowW)
}

// Registry returns the node's metrics registry.
func (w *Worker) Registry() *obs.Registry { return w.reg }

// Handle processes one request message and returns the response. This is
// the single entry point used by both transports.
//
// A request carrying a nonzero TraceID (or any request while the
// slow-query log is armed) runs under a worker-side trace: the root span
// is tagged with this node's id and collects the request's stat deltas
// (cells scanned, bytes moved, cache hits). Traced responses echo the id
// and return the flattened span tree for the coordinator to graft.
func (w *Worker) Handle(req *Message) *Message {
	w.mu.Lock()
	w.stats.Requests++
	w.mu.Unlock()
	start := time.Now()
	ctx := context.Background()
	var root *obs.Span
	slow := w.slowThreshold()
	if req.TraceID != 0 || slow > 0 {
		tr := obs.NewTrace(req.Op)
		root = tr.Root()
		root.SetNode(w.ID)
		ctx = obs.ContextWithSpan(ctx, root)
	}
	var before WorkerStats
	var cacheBefore bufcache.Stats
	if root != nil {
		before, cacheBefore = w.Stats(), w.CacheStats()
	}
	resp, err := w.handle(ctx, req)
	if err != nil {
		resp = &Message{Op: req.Op, Err: err.Error()}
	} else if resp == nil {
		resp = &Message{Op: req.Op}
	}
	if root != nil {
		after, cacheAfter := w.Stats(), w.CacheStats()
		root.Add("cells_scanned", after.CellsScanned-before.CellsScanned)
		root.Add("bytes_in", after.BytesIn-before.BytesIn)
		root.Add("bytes_out", after.BytesOut-before.BytesOut)
		root.Add("cache_hits", cacheAfter.Hits-cacheBefore.Hits)
		root.Add("cache_misses", cacheAfter.Misses-cacheBefore.Misses)
		root.End()
		if req.TraceID != 0 {
			resp.TraceID = req.TraceID
			resp.Spans = root.Flatten()
		}
		if d := time.Since(start); slow > 0 && d >= slow {
			w.logSlow(req.Op, d, root)
		}
	}
	if w.reqHist != nil {
		w.reqHist.Observe(time.Since(start).Seconds())
	}
	return resp
}

func (w *Worker) handle(ctx context.Context, req *Message) (*Message, error) {
	switch req.Op {
	case "ping":
		return &Message{Op: "ping"}, nil
	case "create":
		return w.create(req)
	case "put":
		return w.put(req)
	case "loadchunks":
		return w.loadChunks(req)
	case "insitu":
		return w.insituOp(req)
	case "scan":
		return w.scan(req)
	case "agg":
		return w.agg(req)
	case "count":
		return w.count(req)
	case "flush":
		return w.flushOp(req)
	case "drop":
		return w.drop(req)
	case "replace":
		return w.replace(req)
	case "sjoin":
		return w.sjoin(ctx, req)
	case "heat":
		return w.heatOp(req)
	case "migratechunks":
		return w.migrateChunks(req)
	case "replicachunk":
		return w.replicaChunk(req)
	case "stats":
		s := w.Stats()
		return &Message{Op: "stats", Stats: &s}, nil
	case "cachestats":
		s := w.CacheStats()
		st := w.StoreStats()
		return &Message{Op: "cachestats", Cache: &s, Store: &st}, nil
	case "execstats":
		s := exec.Default().Stats()
		return &Message{Op: "execstats", Exec: &s}, nil
	case "metrics":
		return &Message{Op: "metrics", Metrics: w.reg.Snapshot().Samples}, nil
	}
	return nil, fmt.Errorf("cluster: unknown op %q", req.Op)
}

// replace swaps the node's entire partition content for the payload
// (used by repartitioning).
func (w *Worker) replace(req *Message) (*Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.heat != nil {
		w.heat.Drop(req.Array) // new content, stale heat
	}
	if st, ok := w.stores[req.Array]; ok {
		return w.replaceStoreLocked(st, req)
	}
	a, err := w.local(req.Array)
	if err != nil {
		return nil, err
	}
	in, err := storage.DecodeArray(a.Schema, req.Payload)
	if err != nil {
		return nil, err
	}
	w.stats.CellsHeld += in.Count() - a.Count()
	w.stats.BytesIn += int64(len(req.Payload))
	w.arrays[req.Array] = in
	return &Message{Op: "replace", Cells: in.Count()}, nil
}

// sjoin runs a local structured join between two partitions held on this
// node (the co-partitioned fast path: "comparison operations including
// joins do not require data movement").
func (w *Worker) sjoin(ctx context.Context, req *Message) (*Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	a, err := w.materializeLocked(req.Array)
	if err != nil {
		return nil, err
	}
	b, err := w.materializeLocked(req.Array2)
	if err != nil {
		return nil, err
	}
	if len(req.OnL) != len(req.OnR) || len(req.OnL) == 0 {
		return nil, fmt.Errorf("cluster: sjoin needs matching dimension pair lists")
	}
	pairs := make([]ops.DimPair, len(req.OnL))
	for i := range req.OnL {
		pairs[i] = ops.DimPair{LDim: req.OnL[i], RDim: req.OnR[i]}
	}
	res, err := ops.SjoinCtx(ctx, a, b, pairs)
	if err != nil {
		return nil, err
	}
	payload, err := storage.EncodeArray(res)
	if err != nil {
		return nil, err
	}
	w.stats.BytesOut += int64(len(payload))
	return &Message{Op: "sjoin", Payload: payload, Schema: res.Schema, Cells: res.Count()}, nil
}

func (w *Worker) create(req *Message) (*Message, error) {
	if req.Schema == nil {
		return nil, fmt.Errorf("cluster: create without schema")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.opts.Persist {
		return nil, w.createStoreLocked(req.Array, req.Schema)
	}
	// Unbound all dims locally: a partition holds an arbitrary sub-box.
	a, err := array.New(partitionSchema(req.Schema))
	if err != nil {
		return nil, err
	}
	w.arrays[req.Array] = a
	return nil, nil
}

func (w *Worker) local(name string) (*array.Array, error) {
	a, ok := w.arrays[name]
	if !ok {
		return nil, fmt.Errorf("cluster: node %d has no array %q", w.ID, name)
	}
	return a, nil
}

func (w *Worker) put(req *Message) (*Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if st, ok := w.stores[req.Array]; ok {
		return w.putStoreLocked(st, req)
	}
	a, err := w.local(req.Array)
	if err != nil {
		return nil, err
	}
	in, err := storage.DecodeArray(a.Schema, req.Payload)
	if err != nil {
		return nil, err
	}
	var n int64
	var werr error
	in.Iter(func(c array.Coord, cell array.Cell) bool {
		if err := a.Set(c.Clone(), cell); err != nil {
			werr = err
			return false
		}
		n++
		return true
	})
	if werr != nil {
		return nil, werr
	}
	w.stats.CellsHeld += n
	w.stats.BytesIn += int64(len(req.Payload))
	return &Message{Op: "put", Cells: n}, nil
}

func (w *Worker) scan(req *Message) (*Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, iter, err := w.partLocked(req.Array)
	if err != nil {
		return nil, err
	}
	out, err := array.New(s.Clone())
	if err != nil {
		return nil, err
	}
	box := boxFrom(req, len(s.Dims))
	excl := exclBoxes(req)
	var n, skipped int64
	var werr error
	visit := func(c array.Coord, cell array.Cell) bool {
		if cellExcluded(c, excl) {
			return true
		}
		if len(req.Preds) > 0 && !ops.CellMatchesPreds(req.Preds, cell) {
			return true
		}
		if err := out.Set(c.Clone(), cell); err != nil {
			werr = err
			return false
		}
		n++
		return true
	}
	// A predicated scan over a store-backed partition prunes whole buckets
	// by zone map before reading them — cells the coordinator would have
	// paid to ship, decode, and discard.
	if st, ok := w.stores[req.Array]; ok && len(req.Preds) > 0 {
		skipped, err = st.ScanPruned(box, req.Preds, visit)
	} else {
		err = iter(box, visit)
	}
	if err != nil {
		return nil, err
	}
	if werr != nil {
		return nil, werr
	}
	payload, err := storage.EncodeArray(out)
	if err != nil {
		return nil, err
	}
	w.stats.CellsScanned += n
	w.stats.BytesOut += int64(len(payload))
	return &Message{Op: "scan", Payload: payload, Cells: n, Skipped: skipped}, nil
}

func (w *Worker) agg(req *Message) (*Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, iter, err := w.partLocked(req.Array)
	if err != nil {
		return nil, err
	}
	attr := 0
	if req.Attr != "" && req.Attr != "*" {
		attr = s.AttrIndex(req.Attr)
		if attr < 0 {
			return nil, fmt.Errorf("cluster: unknown attribute %q", req.Attr)
		}
	}
	var gidx []int
	for _, g := range req.GroupDims {
		d := s.DimIndex(g)
		if d < 0 {
			return nil, fmt.Errorf("cluster: unknown grouping dimension %q", g)
		}
		gidx = append(gidx, d)
	}
	box := boxFrom(req, len(s.Dims))
	excl := exclBoxes(req)
	parts := map[string]*Partial{}
	var n int64
	if err := iter(box, func(c array.Coord, cell array.Cell) bool {
		if cellExcluded(c, excl) {
			return true
		}
		n++
		v := cell[attr]
		if v.Null {
			return true
		}
		key := make([]int64, len(gidx))
		for i, d := range gidx {
			key[i] = c[d]
		}
		ks := fmt.Sprint(key)
		p, ok := parts[ks]
		if !ok {
			p = &Partial{Key: key, Min: math.Inf(1), Max: math.Inf(-1)}
			parts[ks] = p
		}
		x := v.AsFloat()
		p.Sum += x
		p.SumSq += x * x
		p.Count++
		if x < p.Min {
			p.Min = x
		}
		if x > p.Max {
			p.Max = x
		}
		return true
	}); err != nil {
		return nil, err
	}
	w.stats.CellsScanned += n
	out := make([]Partial, 0, len(parts))
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, *parts[k])
	}
	return &Message{Op: "agg", Partials: out}, nil
}

func (w *Worker) count(req *Message) (*Message, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	// Routed queries carry a box and/or exclude-chunk list: count through
	// the generic partition iterator so the excluded chunks (answered by
	// another replica this query) are skipped. The unrouted fast paths below
	// stay as they were.
	if excl := exclBoxes(req); len(excl) > 0 || len(req.BoxLo) > 0 {
		s, iter, err := w.partLocked(req.Array)
		if err != nil {
			return nil, err
		}
		box := boxFrom(req, len(s.Dims))
		var n int64
		if err := iter(box, func(c array.Coord, _ array.Cell) bool {
			if !cellExcluded(c, excl) {
				n++
			}
			return true
		}); err != nil {
			return nil, err
		}
		return &Message{Op: "count", Cells: n}, nil
	}
	if st, ok := w.stores[req.Array]; ok {
		var n int64
		if err := st.Scan(fullBox(len(st.Schema().Dims)), func(array.Coord, array.Cell) bool {
			n++
			return true
		}); err != nil {
			return nil, err
		}
		return &Message{Op: "count", Cells: n}, nil
	}
	if p, ok := w.insitus[req.Array]; ok {
		var n int64
		if err := w.insituScan(p, fullBox(len(p.schema.Dims)), func(array.Coord, array.Cell) bool {
			n++
			return true
		}); err != nil {
			return nil, err
		}
		return &Message{Op: "count", Cells: n}, nil
	}
	a, err := w.local(req.Array)
	if err != nil {
		return nil, err
	}
	return &Message{Op: "count", Cells: a.Count()}, nil
}

func (w *Worker) drop(req *Message) (*Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.heat != nil {
		w.heat.Drop(req.Array)
	}
	if st, ok := w.stores[req.Array]; ok {
		if err := st.Close(); err != nil {
			return nil, err
		}
		if w.opts.Dir != "" {
			_ = os.RemoveAll(filepath.Join(w.opts.Dir, req.Array))
		}
		delete(w.stores, req.Array)
		return nil, nil
	}
	if p, ok := w.insitus[req.Array]; ok {
		p.release(w)
		delete(w.insitus, req.Array)
		return nil, nil
	}
	delete(w.arrays, req.Array)
	return nil, nil
}

// boxFrom extracts the query box, defaulting to everything.
func boxFrom(req *Message, nd int) array.Box {
	if len(req.BoxLo) > 0 {
		return array.Box{Lo: req.BoxLo, Hi: req.BoxHi}
	}
	return fullBox(nd)
}

// exclBoxes assembles the request's exclude-chunk boxes (chunks this node
// must not answer because a different replica is assigned them, or because
// this node's copy is a stale post-migration leftover).
func exclBoxes(req *Message) []array.Box {
	if len(req.ExclLo) == 0 {
		return nil
	}
	out := make([]array.Box, 0, len(req.ExclLo))
	for i := range req.ExclLo {
		if i >= len(req.ExclHi) {
			break
		}
		out = append(out, array.Box{Lo: req.ExclLo[i], Hi: req.ExclHi[i]})
	}
	return out
}

// cellExcluded reports whether c falls inside any exclude box.
func cellExcluded(c array.Coord, excl []array.Box) bool {
	for _, b := range excl {
		if b.Contains(c) {
			return true
		}
	}
	return false
}
