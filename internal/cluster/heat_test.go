package cluster

import (
	"reflect"
	"testing"
	"time"

	"scidb/internal/array"
	"scidb/internal/storage"
)

// fakeClock drives a heatTracker's time seam.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeTracker(halfLife time.Duration) (*heatTracker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr := newHeatTracker(halfLife)
	tr.now = clk.now
	return tr, clk
}

func TestHeatDecayHalvesPerHalfLife(t *testing.T) {
	tr, clk := newFakeTracker(10 * time.Second)
	tr.Touch("a", array.Coord{1, 1}, 8)
	clk.advance(10 * time.Second)
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Score != 4 {
		t.Fatalf("after one half-life: %+v, want score 4", snap)
	}
	clk.advance(20 * time.Second)
	if snap = tr.Snapshot(); snap[0].Score != 1 {
		t.Fatalf("after three half-lives: %+v, want score 1", snap)
	}
	// Touches fold decay in before adding weight.
	clk.advance(10 * time.Second)
	tr.Touch("a", array.Coord{1, 1}, 3.5)
	if snap = tr.Snapshot(); snap[0].Score != 4 {
		t.Fatalf("decay-then-add: %+v, want score 4", snap)
	}
	// Cold entries are forgotten once they fall under the noise floor.
	clk.advance(1000 * time.Second)
	if snap = tr.Snapshot(); len(snap) != 0 {
		t.Fatalf("cooled entries survived: %+v", snap)
	}
}

func TestHeatSnapshotOrderAndDrop(t *testing.T) {
	tr, _ := newFakeTracker(time.Hour)
	tr.Touch("b", array.Coord{1}, 1)
	tr.Touch("a", array.Coord{65}, 2)
	tr.Touch("a", array.Coord{1}, 3)
	snap := tr.Snapshot()
	want := []HeatSample{
		{Array: "a", Origin: []int64{1}, Score: 3},
		{Array: "a", Origin: []int64{65}, Score: 2},
		{Array: "b", Origin: []int64{1}, Score: 1},
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("snapshot order:\n got %+v\nwant %+v", snap, want)
	}
	tr.Drop("a")
	if snap = tr.Snapshot(); len(snap) != 1 || snap[0].Array != "b" {
		t.Fatalf("after Drop(a): %+v", snap)
	}
}

// TestWorkerHeatFromReads drives scans through a persistent worker and
// checks the read path feeds the tracker: the heat op must report the
// touched chunks, and dropping the array must clear them.
func TestWorkerHeatFromReads(t *testing.T) {
	w := NewWorkerWithOptions(0, WorkerOptions{Persist: true, Stride: []int64{4}})
	schema := &array.Schema{
		Name:  "h",
		Dims:  []array.Dimension{{Name: "x", High: 8, ChunkLen: 4}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
	resp := w.Handle(&Message{Op: "create", Array: "h", Schema: schema})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	a := array.MustNew(schema)
	for i := int64(1); i <= 8; i++ {
		if err := a.Set(array.Coord{i}, array.Cell{array.Float64(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	payload, err := storage.EncodeArray(a)
	if err != nil {
		t.Fatal(err)
	}
	if resp = w.Handle(&Message{Op: "put", Array: "h", Payload: payload}); resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if resp = w.Handle(&Message{Op: "flush", Array: "h"}); resp.Err != "" {
		t.Fatal(resp.Err)
	}
	// Scan only the first chunk; its bucket read must register heat.
	if resp = w.Handle(&Message{Op: "scan", Array: "h", BoxLo: []int64{1}, BoxHi: []int64{4}}); resp.Err != "" {
		t.Fatal(resp.Err)
	}
	heat := w.Handle(&Message{Op: "heat"})
	if heat.Err != "" {
		t.Fatal(heat.Err)
	}
	found := false
	for _, s := range heat.Heat {
		if s.Array == "h" && len(s.Origin) == 1 && s.Origin[0] == 1 && s.Score > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("heat op missing touched chunk: %+v", heat.Heat)
	}
	if resp = w.Handle(&Message{Op: "drop", Array: "h"}); resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if heat = w.Handle(&Message{Op: "heat"}); len(heat.Heat) != 0 {
		t.Fatalf("heat survived drop: %+v", heat.Heat)
	}
}
