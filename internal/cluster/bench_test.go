package cluster

import (
	"net"
	"sync"
	"testing"

	"scidb/internal/array"
	"scidb/internal/partition"
)

// benchGrid starts servers, loads a grid through tr, and returns a ready
// coordinator.
func benchSetup(b *testing.B, dial func(addrs []string) (Transport, error)) (*Coordinator, Transport, func()) {
	b.Helper()
	var addrs []string
	var srvs []*Server
	for i := 0; i < 3; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv, _ := NewServer(NewWorker(i), ServeOptions{})
		go func() { _ = srv.Serve(ln) }()
		srvs = append(srvs, srv)
		addrs = append(addrs, ln.Addr().String())
	}
	tr, err := dial(addrs)
	if err != nil {
		b.Fatal(err)
	}
	co := NewCoordinator(tr, 0)
	if err := co.Create("b", gridSchema(), partition.Block{Nodes: 3, SplitDim: 0, High: 24}); err != nil {
		b.Fatal(err)
	}
	for i := int64(1); i <= 24; i++ {
		for j := int64(1); j <= 24; j++ {
			if err := co.Put("b", array.Coord{i, j}, array.Cell{array.Float64(float64(i + j))}); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := co.Flush("b"); err != nil {
		b.Fatal(err)
	}
	return co, tr, func() {
		_ = tr.Close()
		for _, s := range srvs {
			s.Shutdown()
		}
	}
}

func benchConcurrentOps(b *testing.B, co *Coordinator) {
	const clients = 16
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				var err error
				switch c % 3 {
				case 0:
					_, err = co.Count("b")
				case 1:
					_, err = co.Scan("b", array.NewBox(array.Coord{1, 1}, array.Coord{8, 8}))
				default:
					_, err = co.Aggregate("b", array.NewBox(array.Coord{1, 1}, array.Coord{24, 24}), "sum", "flux", []string{"x"})
				}
				if err != nil {
					b.Error(err)
				}
			}(c)
		}
		wg.Wait()
	}
}

func BenchmarkConcurrentFanoutBinary(b *testing.B) {
	co, _, stop := benchSetup(b, func(addrs []string) (Transport, error) { return DialTCP(addrs) })
	defer stop()
	benchConcurrentOps(b, co)
}

func BenchmarkConcurrentFanoutGob(b *testing.B) {
	co, _, stop := benchSetup(b, func(addrs []string) (Transport, error) { return DialGobTCP(addrs) })
	defer stop()
	benchConcurrentOps(b, co)
}

func benchPing(b *testing.B, tr Transport) {
	const clients = 16
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 10; k++ {
					if _, err := tr.Call(k%3, &Message{Op: "ping"}); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

func BenchmarkPingBinary(b *testing.B) {
	_, tr, stop := benchSetup(b, func(addrs []string) (Transport, error) { return DialTCP(addrs) })
	defer stop()
	benchPing(b, tr)
}

func BenchmarkPingGob(b *testing.B) {
	_, tr, stop := benchSetup(b, func(addrs []string) (Transport, error) { return DialGobTCP(addrs) })
	defer stop()
	benchPing(b, tr)
}
