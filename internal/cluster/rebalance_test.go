package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"scidb/internal/array"
	"scidb/internal/partition"
)

// rebalanceCluster builds a 3-node persistent grid holding a 48-cell 1-D
// array: stride-8 buckets, 16-row slabs, so each node owns exactly two
// routable chunks and no chunk straddles a slab boundary. Cell values are
// integers so aggregate sums are exact across any merge order.
func rebalanceCluster(t *testing.T) (*Local, *Coordinator) {
	t.Helper()
	tr := NewLocalWithOptions(3, LocalOptions{Persist: true, Stride: []int64{8}, CacheBytes: 1 << 20})
	t.Cleanup(func() { tr.Close() })
	co := NewCoordinator(tr, 0)
	schema := &array.Schema{
		Name:  "sky",
		Dims:  []array.Dimension{{Name: "x", High: 48, ChunkLen: 8}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
	if err := co.Create("sky", schema, partition.Block{Nodes: 3, SplitDim: 0, High: 48}); err != nil {
		t.Fatal(err)
	}
	for x := int64(1); x <= 48; x++ {
		if err := co.Put("sky", array.Coord{x}, array.Cell{array.Float64(float64(x * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := co.Flush("sky"); err != nil {
		t.Fatal(err)
	}
	return tr, co
}

var hotBox = array.Box{Lo: array.Coord{1}, Hi: array.Coord{8}}
var skyBox = array.Box{Lo: array.Coord{1}, Hi: array.Coord{48}}

// verifySky checks a scan result holds exactly the cells in [lo,hi] with
// their original values — the bit-identity probe every rebalancing test
// runs before and after chunks move.
func verifySky(t *testing.T, co *Coordinator, box array.Box) {
	t.Helper()
	got, err := co.Scan("sky", box)
	if err != nil {
		t.Fatalf("scan %v: %v", box, err)
	}
	want := box.Hi[0] - box.Lo[0] + 1
	if got.Count() != want {
		t.Fatalf("scan %v returned %d cells, want %d", box, got.Count(), want)
	}
	for x := box.Lo[0]; x <= box.Hi[0]; x++ {
		cell, ok := got.At(array.Coord{x})
		if !ok || cell[0].Float != float64(x*10) {
			t.Fatalf("cell %d = %v, %v; want %v", x, cell, ok, float64(x*10))
		}
	}
}

// heatUp drives repeated reads at the hot chunk so its tracker score
// dominates the ranking.
func heatUp(t *testing.T, co *Coordinator, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		if _, err := co.Scan("sky", hotBox); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRebalanceMigratesHotChunk: an 80/20-style read skew must move the hot
// chunk off its base owner, with scans, counts, and integer aggregates
// bit-identical before and after, and writes following the new owner.
func TestRebalanceMigratesHotChunk(t *testing.T) {
	_, co := rebalanceCluster(t)
	rt, err := co.EnableRouting("sky", nil)
	if err != nil {
		t.Fatal(err)
	}
	sumBefore, err := co.Aggregate("sky", skyBox, "sum", "v", nil)
	if err != nil {
		t.Fatal(err)
	}
	heatUp(t, co, 20)
	moved, replicated, err := co.RebalanceOnce("sky", RebalanceOptions{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 || replicated != 0 {
		t.Fatalf("round moved %d, replicated %d; want 1, 0", moved, replicated)
	}
	if owner := rt.NodeFor(array.Coord{1}); owner == 0 {
		t.Fatal("hot chunk still owned by node 0 after migration")
	}
	if v := rt.Version(); v == 0 {
		t.Fatal("routing version not bumped by migration")
	}
	verifySky(t, co, hotBox)
	verifySky(t, co, skyBox)
	if n, err := co.Count("sky"); err != nil || n != 48 {
		t.Fatalf("count = %d, %v; want 48", n, err)
	}
	sumAfter, err := co.Aggregate("sky", skyBox, "sum", "v", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sumBefore.At(array.Coord{1})
	a, _ := sumAfter.At(array.Coord{1})
	if a[0].Float != b[0].Float {
		t.Fatalf("aggregate changed across migration: %v -> %v", b[0].Float, a[0].Float)
	}
	// Writes follow the route: update a migrated cell and read it back.
	if err := co.Put("sky", array.Coord{3}, array.Cell{array.Float64(9999)}); err != nil {
		t.Fatal(err)
	}
	if err := co.Flush("sky"); err != nil {
		t.Fatal(err)
	}
	got, err := co.Scan("sky", hotBox)
	if err != nil {
		t.Fatal(err)
	}
	if cell, ok := got.At(array.Coord{3}); !ok || cell[0].Float != 9999 {
		t.Fatalf("post-migration write lost: %v, %v", cell, ok)
	}
}

// TestRebalanceReplicatesAndSurvivesNodeDeath: k-replicating the hot chunk
// onto every node must leave queries bit-identical, and killing the base
// owner mid-workload must be answered from the surviving replicas — while
// a query touching the dead node's unreplicated chunks still fails loudly.
func TestRebalanceReplicatesAndSurvivesNodeDeath(t *testing.T) {
	tr, co := rebalanceCluster(t)
	rt, err := co.EnableRouting("sky", nil)
	if err != nil {
		t.Fatal(err)
	}
	heatUp(t, co, 20)
	moved, replicated, err := co.RebalanceOnce("sky", RebalanceOptions{TopK: 1, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 || replicated != 2 {
		t.Fatalf("round moved %d, replicated %d; want 0, 2", moved, replicated)
	}
	nodes := rt.NodesFor(array.Coord{1})
	if len(nodes) != 3 || nodes[0] != 0 {
		t.Fatalf("replica set = %v; want all three nodes, owner first", nodes)
	}
	// Replica-served reads are bit-identical however the reader rotates.
	for i := 0; i < 6; i++ {
		verifySky(t, co, hotBox)
	}
	verifySky(t, co, skyBox)

	// Kill the base owner: the hot chunk answers from replicas. The plan
	// drops fully-excluded nodes, so node 0 is only contacted when the
	// reader rotation lands on it — scan enough times to force that.
	tr.Kill(0)
	for i := 0; i < 4; i++ {
		verifySky(t, co, hotBox)
	}
	if down := co.DownNodes(); len(down) != 1 || down[0] != 0 {
		t.Fatalf("DownNodes = %v; want [0]", down)
	}
	// ...but node 0's second, unreplicated chunk cannot be conjured up.
	if _, err := co.Scan("sky", skyBox); err == nil || !strings.Contains(err.Error(), "no replica") {
		t.Fatalf("full scan with dead unreplicated chunk: %v; want a no-replica error", err)
	}
	// Revive and clear: the cluster heals back to full coverage.
	tr.Revive(0)
	co.MarkUp(0)
	verifySky(t, co, skyBox)
}

// TestWriteFenceDuringMigration: writes racing a migration must never be
// lost — the writeSeq fence re-copies the chunk at cutover when anything
// landed after the export.
func TestWriteFenceDuringMigration(t *testing.T) {
	_, co := rebalanceCluster(t)
	if _, err := co.EnableRouting("sky", nil); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var werr error
	var wg sync.WaitGroup
	wg.Add(1)
	rounds := 0
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rounds++
			for x := int64(1); x <= 8; x++ {
				if err := co.Put("sky", array.Coord{x}, array.Cell{array.Float64(float64(rounds*1000 + int(x)))}); err != nil {
					werr = err
					return
				}
			}
		}
	}()
	for i := 0; i < 5; i++ {
		heatUp(t, co, 5)
		if _, _, err := co.RebalanceOnce("sky", RebalanceOptions{TopK: 2}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if werr != nil {
		t.Fatal(werr)
	}
	if err := co.Flush("sky"); err != nil {
		t.Fatal(err)
	}
	got, err := co.Scan("sky", hotBox)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(1); x <= 8; x++ {
		cell, ok := got.At(array.Coord{x})
		want := float64(rounds*1000 + int(x))
		if !ok || cell[0].Float != want {
			t.Fatalf("cell %d = %v, %v after fenced migration; want %v (round %d)", x, cell, ok, want, rounds)
		}
	}
	verifySky(t, co, array.Box{Lo: array.Coord{9}, Hi: array.Coord{48}})
}

// TestConcurrentScansDuringRebalanceStress is the race-detector stress for
// live migration: scans hammer the chunks the rebalancer is moving, and
// every result must be bit-identical to the static content. Run under
// `make race` (the cluster package is on the Makefile race list).
func TestConcurrentScansDuringRebalanceStress(t *testing.T) {
	_, co := rebalanceCluster(t)
	if _, err := co.EnableRouting("sky", nil); err != nil {
		t.Fatal(err)
	}
	iters := 40
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				box := hotBox
				if i%4 == g%4 {
					box = skyBox
				}
				got, err := co.Scan("sky", box)
				if err != nil {
					errc <- err
					return
				}
				for x := box.Lo[0]; x <= box.Hi[0]; x++ {
					cell, ok := got.At(array.Coord{x})
					if !ok || cell[0].Float != float64(x*10) {
						errc <- fmt.Errorf("goroutine %d iter %d: cell %d = %v, %v", g, i, x, cell, ok)
						return
					}
				}
			}
		}(g)
	}
	// Rebalance concurrently with the scans: alternate migration and
	// replication rounds so chunks move while they are being read.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			opts := RebalanceOptions{TopK: 2}
			if i%2 == 1 {
				opts.Replicas = 2
			}
			if _, _, err := co.RebalanceOnce("sky", opts); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	<-done
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	verifySky(t, co, skyBox)
}
