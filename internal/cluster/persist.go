package cluster

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"scidb/internal/array"
	"scidb/internal/bufcache"
	"scidb/internal/exec"
	"scidb/internal/obs"
	"scidb/internal/storage"
)

// WorkerOptions configures a node's partition backing. The zero value keeps
// the original behaviour: plain in-memory array partitions, no pool.
type WorkerOptions struct {
	// Persist backs every partition with a storage.Store (stride-aligned
	// compressed buckets + R-tree) instead of a plain array.
	Persist bool
	// Dir is the node's bucket-directory root; each partition gets a
	// subdirectory. Empty keeps buckets in memory (still encoded).
	Dir string
	// Stride is the bucket stride handed to each partition's store.
	Stride []int64
	// Cache is a decoded-bucket pool shared with other nodes (one pool per
	// process is the intended deployment). Nil with CacheBytes > 0 builds a
	// private pool; both nil/zero leaves reads uncached.
	Cache      *bufcache.Pool
	CacheBytes int64
	// Readahead is the scan prefetch depth handed to each partition's
	// store: how many upcoming buckets a scan loads into the pool ahead of
	// its read position. Zero disables readahead.
	Readahead int
	// HeatHalfLife is the decay half-life of the node's per-chunk access
	// heat tracker (scidb-server -heat-half-life). Zero means the 30s
	// default; heat is always tracked — the tracker is cheap and the
	// rebalancer needs it.
	HeatHalfLife time.Duration
}

// NewWorkerWithOptions creates a worker with configured partition backing.
func NewWorkerWithOptions(id int, opts WorkerOptions) *Worker {
	w := &Worker{
		ID:      id,
		opts:    opts,
		arrays:  map[string]*array.Array{},
		stores:  map[string]*storage.Store{},
		insitus: map[string]*insituPart{},
		heat:    newHeatTracker(opts.HeatHalfLife),
	}
	if opts.Cache != nil {
		w.cache = opts.Cache
	} else if opts.CacheBytes > 0 {
		w.cache = bufcache.New(opts.CacheBytes)
	}
	// Every node carries its own registry so the "metrics" op (and a
	// scidb-server's /metrics endpoint) exposes one coherent per-node view:
	// request counters, the cache pool, summed store counters, and the
	// process-wide exec pool.
	w.reg = obs.NewRegistry()
	w.reqHist = w.reg.Histogram("scidb_worker_request_seconds", "Worker request latency in seconds.", nil)
	w.reg.RegisterFunc("scidb_worker", "Per-node request and data-movement counters.", obs.KindGauge,
		func(emit func(obs.Sample)) {
			s := w.Stats()
			emit(obs.Sample{Name: "scidb_worker_cells_held", Value: float64(s.CellsHeld)})
			emit(obs.Sample{Name: "scidb_worker_cells_scanned_total", Value: float64(s.CellsScanned)})
			emit(obs.Sample{Name: "scidb_worker_bytes_in_total", Value: float64(s.BytesIn)})
			emit(obs.Sample{Name: "scidb_worker_bytes_out_total", Value: float64(s.BytesOut)})
			emit(obs.Sample{Name: "scidb_worker_requests_total", Value: float64(s.Requests)})
		})
	w.reg.RegisterFunc("scidb_heat", "Per-node chunk access-heat tracker gauges.", obs.KindGauge,
		func(emit func(obs.Sample)) {
			chunks, total, touches := w.heat.stats()
			emit(obs.Sample{Name: "scidb_heat_tracked_chunks", Value: float64(chunks)})
			emit(obs.Sample{Name: "scidb_heat_score_total", Value: total})
			emit(obs.Sample{Name: "scidb_heat_touches_total", Value: float64(touches)})
		})
	if w.cache != nil {
		w.cache.RegisterMetrics(w.reg, "")
	}
	storage.RegisterMetrics(w.reg, "", w.StoreStats)
	w.reg.RegisterFunc("scidb_exec", "Process-wide worker pool scheduling counters.", obs.KindGauge,
		func(emit func(obs.Sample)) {
			s := exec.Default().Stats()
			emit(obs.Sample{Name: "scidb_exec_parallelism", Value: float64(s.Parallelism)})
			emit(obs.Sample{Name: "scidb_exec_tasks_total", Value: float64(s.TasksRun)})
			emit(obs.Sample{Name: "scidb_exec_chunks_total", Value: float64(s.ChunksProcessed)})
			emit(obs.Sample{Name: "scidb_exec_parallel_runs_total", Value: float64(s.ParallelRuns)})
			emit(obs.Sample{Name: "scidb_exec_serial_runs_total", Value: float64(s.SerialRuns)})
			emit(obs.Sample{Name: "scidb_exec_saturation_total", Value: float64(s.Saturation)})
		})
	return w
}

// CachePool exposes the worker's decoded-bucket pool (nil when uncached).
func (w *Worker) CachePool() *bufcache.Pool { return w.cache }

// CacheStats snapshots the worker's pool counters (zero value if uncached).
func (w *Worker) CacheStats() bufcache.Stats {
	if w.cache == nil {
		return bufcache.Stats{}
	}
	return w.cache.Stats()
}

// StoreStats sums the storage counters of every store-backed partition on
// this node (zero value when partitions are plain in-memory arrays).
func (w *Worker) StoreStats() storage.Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	var sum storage.Stats
	for _, st := range w.stores {
		sum = sum.Add(st.Stats())
	}
	return sum
}

// Close shuts down every store-backed partition, flushing buffered cells and
// releasing their pool entries.
func (w *Worker) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var first error
	for name, st := range w.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
		delete(w.stores, name)
	}
	for name, p := range w.insitus {
		p.release(w)
		delete(w.insitus, name)
	}
	return first
}

// flushOp spills a store-backed partition's buffered cells into disk buckets
// so they survive a restart. Array-backed partitions have nothing to spill.
func (w *Worker) flushOp(req *Message) (*Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if st, ok := w.stores[req.Array]; ok {
		if err := st.Flush(); err != nil {
			return nil, err
		}
	} else if _, ok := w.insitus[req.Array]; ok {
		// In-situ partitions are read-through views of the file: no spill.
	} else if _, err := w.local(req.Array); err != nil {
		return nil, err
	}
	return &Message{Op: "flush"}, nil
}

// partitionSchema is the local shape of a distributed array: dimensions
// unbounded (a partition holds an arbitrary sub-box) with chunking defaults.
func partitionSchema(in *array.Schema) *array.Schema {
	s := in.Clone()
	for i := range s.Dims {
		if s.Dims[i].ChunkLen <= 0 {
			s.Dims[i].ChunkLen = 64
		}
		s.Dims[i].High = array.Unbounded
	}
	return s
}

// createStoreLocked builds the store-backed partition for create.
func (w *Worker) createStoreLocked(name string, schema *array.Schema) error {
	if old, ok := w.stores[name]; ok {
		_ = old.Close()
	}
	dir := ""
	if w.opts.Dir != "" {
		dir = filepath.Join(w.opts.Dir, name)
	}
	st, err := storage.NewStore(partitionSchema(schema), storage.Options{
		Dir:       dir,
		Stride:    w.opts.Stride,
		Cache:     w.cache,
		Readahead: w.opts.Readahead,
		// Heat sampling: every bucket consulted by a read (cache hit or
		// miss) scores one touch for its chunk. Called under the store
		// lock; Touch only takes the tracker's own mutex.
		OnBucketRead: func(box array.Box) {
			w.heat.Touch(name, box.Lo, 1)
		},
	})
	if err != nil {
		return err
	}
	w.stores[name] = st
	return nil
}

// partLocked resolves a partition to its schema and a box-bounded iterator,
// hiding whether the backing is a plain array or a storage.Store. The
// iterator honours fn's early-stop return.
func (w *Worker) partLocked(name string) (*array.Schema, func(array.Box, func(array.Coord, array.Cell) bool) error, error) {
	if st, ok := w.stores[name]; ok {
		return st.Schema(), st.Scan, nil
	}
	if p, ok := w.insitus[name]; ok {
		iter := func(box array.Box, fn func(array.Coord, array.Cell) bool) error {
			return w.insituScan(p, box, fn)
		}
		return p.schema, iter, nil
	}
	a, ok := w.arrays[name]
	if !ok {
		return nil, nil, fmt.Errorf("cluster: node %d has no array %q", w.ID, name)
	}
	iter := func(box array.Box, fn func(array.Coord, array.Cell) bool) error {
		a.Iter(func(c array.Coord, cell array.Cell) bool {
			if !box.Contains(c) {
				return true
			}
			return fn(c, cell)
		})
		return nil
	}
	return a.Schema, iter, nil
}

// materializeLocked returns the partition's full content as a plain array
// (the shape sjoin and repartitioning work over). Array-backed partitions
// are returned as-is; store-backed ones are scanned out through the pool.
func (w *Worker) materializeLocked(name string) (*array.Array, error) {
	if a, ok := w.arrays[name]; ok {
		return a, nil
	}
	s, iter, err := w.partLocked(name)
	if err != nil {
		return nil, err
	}
	out, err := array.New(s.Clone())
	if err != nil {
		return nil, err
	}
	var werr error
	if err := iter(fullBox(len(s.Dims)), func(c array.Coord, cell array.Cell) bool {
		if err := out.Set(c.Clone(), cell); err != nil {
			werr = err
			return false
		}
		return true
	}); err != nil {
		return nil, err
	}
	if werr != nil {
		return nil, werr
	}
	return out, nil
}

// putStoreLocked ingests a payload into a store-backed partition.
func (w *Worker) putStoreLocked(st *storage.Store, req *Message) (*Message, error) {
	in, err := storage.DecodeArray(st.Schema(), req.Payload)
	if err != nil {
		return nil, err
	}
	var n int64
	var werr error
	in.Iter(func(c array.Coord, cell array.Cell) bool {
		if err := st.Put(c.Clone(), cell); err != nil {
			werr = err
			return false
		}
		n++
		return true
	})
	if werr != nil {
		return nil, werr
	}
	w.stats.CellsHeld += n
	w.stats.BytesIn += int64(len(req.Payload))
	return &Message{Op: "put", Cells: n}, nil
}

// replaceStoreLocked swaps a store-backed partition's entire content for the
// payload. The old store (and its bucket directory) is destroyed so the new
// one cannot recover stale buckets from a prior manifest.
func (w *Worker) replaceStoreLocked(st *storage.Store, req *Message) (*Message, error) {
	in, err := storage.DecodeArray(st.Schema(), req.Payload)
	if err != nil {
		return nil, err
	}
	var old int64
	if err := st.Scan(fullBox(len(st.Schema().Dims)), func(array.Coord, array.Cell) bool {
		old++
		return true
	}); err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	if dir := filepath.Join(w.opts.Dir, req.Array); w.opts.Dir != "" {
		if err := os.RemoveAll(dir); err != nil {
			return nil, err
		}
	}
	delete(w.stores, req.Array)
	if err := w.createStoreLocked(req.Array, st.Schema()); err != nil {
		return nil, err
	}
	fresh := w.stores[req.Array]
	var n int64
	var werr error
	in.Iter(func(c array.Coord, cell array.Cell) bool {
		if err := fresh.Put(c.Clone(), cell); err != nil {
			werr = err
			return false
		}
		n++
		return true
	})
	if werr != nil {
		return nil, werr
	}
	w.stats.CellsHeld += n - old
	w.stats.BytesIn += int64(len(req.Payload))
	return &Message{Op: "replace", Cells: n}, nil
}

// fullBox is the everything-box for an nd-dimensional partition.
func fullBox(nd int) array.Box {
	lo := make(array.Coord, nd)
	hi := make(array.Coord, nd)
	for i := range lo {
		lo[i] = 1
		hi[i] = math.MaxInt64 / 4
	}
	return array.Box{Lo: lo, Hi: hi}
}
