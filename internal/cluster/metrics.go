package cluster

import "scidb/internal/obs"

// RegisterTransportMetrics exposes a client-side transport's wire counters
// (Coordinator.TransportStats, or any StatsSource) in a metrics registry.
// The source returns ok=false when no networked transport is attached —
// e.g. a Local coordinator — in which case nothing is emitted, so the
// family simply stays absent rather than reporting zeros that look like a
// dead link.
func RegisterTransportMetrics(r *obs.Registry, label string, src func() (TransportStats, bool)) {
	r.RegisterFunc("scidb_transport_client", "Client-side wire transport counters.", obs.KindGauge,
		func(emit func(obs.Sample)) {
			s, ok := src()
			if !ok {
				return
			}
			emit(obs.Sample{Name: "scidb_transport_client_calls_total", Label: label, Value: float64(s.Calls)})
			emit(obs.Sample{Name: "scidb_transport_client_frames_out_total", Label: label, Value: float64(s.FramesOut)})
			emit(obs.Sample{Name: "scidb_transport_client_frames_in_total", Label: label, Value: float64(s.FramesIn)})
			emit(obs.Sample{Name: "scidb_transport_client_bytes_out_total", Label: label, Value: float64(s.BytesOut)})
			emit(obs.Sample{Name: "scidb_transport_client_bytes_in_total", Label: label, Value: float64(s.BytesIn)})
			emit(obs.Sample{Name: "scidb_transport_client_compressed_out_total", Label: label, Value: float64(s.CompressedOut)})
			emit(obs.Sample{Name: "scidb_transport_client_compressed_in_total", Label: label, Value: float64(s.CompressedIn)})
			emit(obs.Sample{Name: "scidb_transport_client_in_flight", Label: label, Value: float64(s.InFlight)})
			emit(obs.Sample{Name: "scidb_transport_client_in_flight_hwm", Label: label, Value: float64(s.InFlightHWM)})
			emit(obs.Sample{Name: "scidb_transport_client_round_trip_seconds_total", Label: label, Value: s.RoundTrip().Seconds()})
			emit(obs.Sample{Name: "scidb_transport_client_timeouts_total", Label: label, Value: float64(s.Timeouts)})
		})
}
