package insitu

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"strconv"
	"strings"

	"scidb/internal/array"
)

// --- CSV adaptor ----------------------------------------------------------

// CSVAdaptor reads a headered CSV file in situ: the header declares
// dimensions and attributes, each data line carries the dimension
// coordinates followed by the attribute values. Scanning streams the file;
// nothing is loaded ahead of time.
//
//	# scidb-csv
//	# dims: x, y
//	# attrs: v:float, tag:string
//	1,1,0.5,hello
type CSVAdaptor struct{}

// Name implements Adaptor.
func (CSVAdaptor) Name() string { return "csv" }

// Open implements Adaptor. Only the header is read; data stays on disk.
func (CSVAdaptor) Open(path string) (Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	schema, err := parseCSVHeader(sc, path)
	if err != nil {
		return nil, err
	}
	return &csvDataset{path: path, schema: schema}, nil
}

func parseCSVHeader(sc *bufio.Scanner, path string) (*array.Schema, error) {
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "# scidb-csv" {
		return nil, fmt.Errorf("insitu: %s: missing '# scidb-csv' marker", path)
	}
	schema := &array.Schema{Name: csvBase(path)}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "# dims:"):
			for _, d := range strings.Split(strings.TrimPrefix(line, "# dims:"), ",") {
				d = strings.TrimSpace(d)
				if d == "" {
					continue
				}
				// "name:High" declares the dimension bound; a bare name
				// stays unbounded (the original dialect).
				high := int64(array.Unbounded)
				if parts := strings.SplitN(d, ":", 2); len(parts) == 2 {
					v, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
					if err != nil {
						return nil, fmt.Errorf("insitu: %s: bad dimension bound %q", path, d)
					}
					d, high = strings.TrimSpace(parts[0]), v
				}
				schema.Dims = append(schema.Dims, array.Dimension{Name: d, High: high})
			}
		case strings.HasPrefix(line, "# attrs:"):
			for _, a := range strings.Split(strings.TrimPrefix(line, "# attrs:"), ",") {
				a = strings.TrimSpace(a)
				if a == "" {
					continue
				}
				parts := strings.SplitN(a, ":", 2)
				t := array.TFloat64
				if len(parts) == 2 {
					var err error
					t, err = array.ParseType(strings.TrimSpace(parts[1]))
					if err != nil {
						return nil, fmt.Errorf("insitu: %s: %w", path, err)
					}
				}
				schema.Attrs = append(schema.Attrs, array.Attribute{Name: strings.TrimSpace(parts[0]), Type: t})
			}
		default:
			// First data line (or blank); header over.
			if err := schema.Validate(); err != nil {
				return nil, fmt.Errorf("insitu: %s: %w", path, err)
			}
			return schema, nil
		}
	}
	if err := schema.Validate(); err != nil {
		return nil, fmt.Errorf("insitu: %s: %w", path, err)
	}
	return schema, nil
}

func csvBase(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.IndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	if base == "" {
		base = "csv"
	}
	return base
}

type csvDataset struct {
	path   string
	schema *array.Schema
}

func (d *csvDataset) Schema() *array.Schema { return d.schema }

func (d *csvDataset) Close() error { return nil }

// Scan streams the file, parsing and filtering line by line — the in-situ
// path: no load step, data under user control.
func (d *csvDataset) Scan(box array.Box, fn func(array.Coord, array.Cell) bool) error {
	f, err := os.Open(d.path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		c, cell, ok, err := parseCSVRecord(d.schema, sc.Text())
		if err != nil {
			return fmt.Errorf("insitu: %s:%d: %w", d.path, lineNo, err)
		}
		if !ok || !box.Contains(c) {
			continue
		}
		if !fn(c, cell) {
			return nil
		}
	}
	return sc.Err()
}

// parseCSVRecord parses one CSV line into a coordinate and a cell. ok is
// false for blank lines and # comments (including the header). The returned
// error carries no file/line context; callers add it.
func parseCSVRecord(schema *array.Schema, rawLine string) (array.Coord, array.Cell, bool, error) {
	line := strings.TrimSpace(rawLine)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil, nil, false, nil
	}
	nd, na := len(schema.Dims), len(schema.Attrs)
	fields := strings.Split(line, ",")
	if len(fields) != nd+na {
		return nil, nil, false, fmt.Errorf("%d fields, want %d", len(fields), nd+na)
	}
	c := make(array.Coord, nd)
	for i := 0; i < nd; i++ {
		v, err := strconv.ParseInt(strings.TrimSpace(fields[i]), 10, 64)
		if err != nil {
			return nil, nil, false, fmt.Errorf("bad coordinate %q", fields[i])
		}
		c[i] = v
	}
	cell := make(array.Cell, na)
	for i := 0; i < na; i++ {
		v, err := parseCSVValue(strings.TrimSpace(fields[nd+i]), schema.Attrs[i].Type)
		if err != nil {
			return nil, nil, false, err
		}
		cell[i] = v
	}
	return c, cell, true, nil
}

func parseCSVValue(raw string, t array.Type) (array.Value, error) {
	if raw == "" || raw == "NULL" {
		return array.NullValue(t), nil
	}
	switch t {
	case array.TInt64:
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return array.Value{}, fmt.Errorf("bad int %q", raw)
		}
		return array.Int64(v), nil
	case array.TFloat64:
		// "v±s" carries an error bar.
		if i := strings.IndexRune(raw, '±'); i >= 0 {
			m, err1 := strconv.ParseFloat(raw[:i], 64)
			s, err2 := strconv.ParseFloat(raw[i+len("±"):], 64)
			if err1 != nil || err2 != nil {
				return array.Value{}, fmt.Errorf("bad uncertain float %q", raw)
			}
			return array.UncertainFloat(m, s), nil
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return array.Value{}, fmt.Errorf("bad float %q", raw)
		}
		return array.Float64(v), nil
	case array.TBool:
		v, err := strconv.ParseBool(raw)
		if err != nil {
			return array.Value{}, fmt.Errorf("bad bool %q", raw)
		}
		return array.Bool64(v), nil
	case array.TString:
		return array.String64(raw), nil
	}
	return array.Value{}, fmt.Errorf("unsupported CSV type")
}

// WriteCSV writes an array in the adaptor's CSV dialect.
func WriteCSV(path string, a *array.Array) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "# scidb-csv")
	var dims, attrs []string
	for _, d := range a.Schema.Dims {
		if d.High != array.Unbounded {
			dims = append(dims, fmt.Sprintf("%s:%d", d.Name, d.High))
		} else {
			dims = append(dims, d.Name)
		}
	}
	for _, at := range a.Schema.Attrs {
		attrs = append(attrs, at.Name+":"+at.Type.String())
	}
	fmt.Fprintf(w, "# dims: %s\n", strings.Join(dims, ", "))
	fmt.Fprintf(w, "# attrs: %s\n", strings.Join(attrs, ", "))
	var werr error
	a.Iter(func(c array.Coord, cell array.Cell) bool {
		var fields []string
		for _, v := range c {
			fields = append(fields, strconv.FormatInt(v, 10))
		}
		for _, v := range cell {
			if v.Null {
				fields = append(fields, "NULL")
			} else {
				fields = append(fields, v.String())
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return w.Flush()
}

// --- NCL: a NetCDF-like dense container -----------------------------------

// NCL is this repo's stand-in for NetCDF/HDF-5 (see DESIGN.md): a dense,
// dimensioned, multi-variable binary container with named dimensions and
// typed variables, supporting random access without a load step.
//
// Layout (little endian):
//
//	"NCL1" | ndims u32 | {nameLen u32, name, size u64}* |
//	nvars u32 | {nameLen u32, name, type u8}* |
//	per variable, row-major dense payload of 8-byte values
type nclHeader struct {
	dims     []array.Dimension
	vars     []array.Attribute
	dataOff  []int64 // per-variable payload offset
	cellsPer int64
}

// NCLAdaptor opens NCL files in situ with random access.
type NCLAdaptor struct{}

// Name implements Adaptor.
func (NCLAdaptor) Name() string { return "ncl" }

// Open implements Adaptor. Only the header is parsed.
func (NCLAdaptor) Open(path string) (Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr, err := readNCLHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	schema := &array.Schema{Name: csvBase(path), Dims: hdr.dims, Attrs: hdr.vars}
	if err := schema.Validate(); err != nil {
		f.Close()
		return nil, err
	}
	return &nclDataset{f: f, hdr: hdr, schema: schema}, nil
}

// WriteNCL writes a dense array (every in-bounds cell present; absent cells
// are written as zero) in NCL format. Only int64/float64 attributes are
// supported, matching NetCDF's numeric focus.
func WriteNCL(path string, a *array.Array) error {
	for _, at := range a.Schema.Attrs {
		if at.Type != array.TInt64 && at.Type != array.TFloat64 {
			return fmt.Errorf("insitu: NCL supports numeric variables only, %s is %s", at.Name, at.Type)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.WriteString("NCL1"); err != nil {
		return err
	}
	var b8 [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b8[:4], v)
		w.Write(b8[:4])
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		w.Write(b8[:])
	}
	u32(uint32(len(a.Schema.Dims)))
	for i, d := range a.Schema.Dims {
		u32(uint32(len(d.Name)))
		w.WriteString(d.Name)
		u64(uint64(a.Hwm(i)))
	}
	u32(uint32(len(a.Schema.Attrs)))
	for _, at := range a.Schema.Attrs {
		u32(uint32(len(at.Name)))
		w.WriteString(at.Name)
		w.WriteByte(byte(at.Type))
	}
	// Dense payloads.
	bounds := a.Bounds()
	box := array.Box{Lo: make(array.Coord, len(bounds)), Hi: bounds}
	for i := range box.Lo {
		box.Lo[i] = 1
	}
	for ai, at := range a.Schema.Attrs {
		var werr error
		array.IterBox(box, func(c array.Coord) bool {
			var bits uint64
			if cell, ok := a.At(c); ok && !cell[ai].Null {
				if at.Type == array.TInt64 {
					bits = uint64(cell[ai].Int)
				} else {
					bits = floatBits(cell[ai].Float)
				}
			}
			binary.LittleEndian.PutUint64(b8[:], bits)
			if _, err := w.Write(b8[:]); err != nil {
				werr = err
				return false
			}
			return true
		})
		if werr != nil {
			return werr
		}
	}
	return w.Flush()
}

func readNCLHeader(f *os.File) (*nclHeader, error) {
	r := bufio.NewReader(f)
	magic := make([]byte, 4)
	if _, err := readFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != "NCL1" {
		return nil, fmt.Errorf("insitu: not an NCL file")
	}
	off := int64(4)
	rdU32 := func() (uint32, error) {
		b := make([]byte, 4)
		if _, err := readFull(r, b); err != nil {
			return 0, err
		}
		off += 4
		return binary.LittleEndian.Uint32(b), nil
	}
	rdU64 := func() (uint64, error) {
		b := make([]byte, 8)
		if _, err := readFull(r, b); err != nil {
			return 0, err
		}
		off += 8
		return binary.LittleEndian.Uint64(b), nil
	}
	rdStr := func(n uint32) (string, error) {
		b := make([]byte, n)
		if _, err := readFull(r, b); err != nil {
			return "", err
		}
		off += int64(n)
		return string(b), nil
	}
	nd, err := rdU32()
	if err != nil {
		return nil, err
	}
	hdr := &nclHeader{cellsPer: 1}
	for i := uint32(0); i < nd; i++ {
		nl, err := rdU32()
		if err != nil {
			return nil, err
		}
		name, err := rdStr(nl)
		if err != nil {
			return nil, err
		}
		size, err := rdU64()
		if err != nil {
			return nil, err
		}
		hdr.dims = append(hdr.dims, array.Dimension{Name: name, High: int64(size)})
		hdr.cellsPer *= int64(size)
	}
	nv, err := rdU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nv; i++ {
		nl, err := rdU32()
		if err != nil {
			return nil, err
		}
		name, err := rdStr(nl)
		if err != nil {
			return nil, err
		}
		tb := make([]byte, 1)
		if _, err := readFull(r, tb); err != nil {
			return nil, err
		}
		off++
		hdr.vars = append(hdr.vars, array.Attribute{Name: name, Type: array.Type(tb[0])})
	}
	for i := range hdr.vars {
		hdr.dataOff = append(hdr.dataOff, off+int64(i)*hdr.cellsPer*8)
	}
	return hdr, nil
}

type nclDataset struct {
	f      *os.File
	hdr    *nclHeader
	schema *array.Schema
}

func (d *nclDataset) Schema() *array.Schema { return d.schema }

func (d *nclDataset) Close() error { return d.f.Close() }

// Scan reads only the requested box from disk via random access — the
// genuine in-situ advantage over load-everything-then-query.
func (d *nclDataset) Scan(box array.Box, fn func(array.Coord, array.Cell) bool) error {
	whole := array.WholeBox(d.schema)
	q, ok := whole.Intersect(box)
	if !ok {
		return nil
	}
	origin := make(array.Coord, len(d.hdr.dims))
	shape := make([]int64, len(d.hdr.dims))
	for i, dim := range d.hdr.dims {
		origin[i] = 1
		shape[i] = dim.High
	}
	buf := make([]byte, 8)
	var scanErr error
	array.IterBox(q, func(c array.Coord) bool {
		idx := array.RowMajorIndex(origin, shape, c)
		cell := make(array.Cell, len(d.hdr.vars))
		for vi, at := range d.hdr.vars {
			if _, err := d.f.ReadAt(buf, d.hdr.dataOff[vi]+idx*8); err != nil {
				scanErr = err
				return false
			}
			bits := binary.LittleEndian.Uint64(buf)
			if at.Type == array.TInt64 {
				cell[vi] = array.Int64(int64(bits))
			} else {
				cell[vi] = array.Float64(floatFromBits(bits))
			}
		}
		return fn(c, cell)
	})
	return scanErr
}

func readFull(r *bufio.Reader, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := r.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
