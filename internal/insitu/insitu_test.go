package insitu

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"scidb/internal/array"
)

func sampleArray(t *testing.T) *array.Array {
	t.Helper()
	s := &array.Schema{
		Name: "sample",
		Dims: []array.Dimension{{Name: "x", High: 4}, {Name: "y", High: 4}},
		Attrs: []array.Attribute{
			{Name: "v", Type: array.TFloat64},
			{Name: "n", Type: array.TInt64},
		},
	}
	a := array.MustNew(s)
	if err := a.Fill(func(c array.Coord) array.Cell {
		return array.Cell{array.Float64(float64(c[0]*10 + c[1])), array.Int64(c[0] * c[1])}
	}); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSDFRoundTrip(t *testing.T) {
	a := sampleArray(t)
	var buf bytes.Buffer
	if err := WriteSDF(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSDF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema.Name != "sample" || back.Count() != 16 {
		t.Fatalf("schema %q cells %d", back.Schema.Name, back.Count())
	}
	cell, ok := back.At(array.Coord{3, 2})
	if !ok || cell[0].Float != 32 || cell[1].Int != 6 {
		t.Errorf("cell = %v,%v", cell, ok)
	}
}

func TestSDFSelfDescribing(t *testing.T) {
	// An SDF file opens with no external schema — that is the point.
	a := sampleArray(t)
	path := filepath.Join(t.TempDir(), "a.sdf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSDF(f, a); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ad, err := ByName("sdf")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ad.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if len(ds.Schema().Dims) != 2 || len(ds.Schema().Attrs) != 2 {
		t.Errorf("recovered schema = %s", ds.Schema())
	}
	n := 0
	_ = ds.Scan(array.NewBox(array.Coord{1, 1}, array.Coord{2, 2}), func(c array.Coord, cell array.Cell) bool {
		n++
		return true
	})
	if n != 4 {
		t.Errorf("box scan saw %d cells, want 4", n)
	}
}

func TestSDFRejectsGarbage(t *testing.T) {
	if _, err := ReadSDF(bytes.NewReader([]byte("not sdf at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSDF(bytes.NewReader([]byte("SD"))); err == nil {
		t.Error("truncated magic accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	a := sampleArray(t)
	path := filepath.Join(t.TempDir(), "a.csv")
	if err := WriteCSV(path, a); err != nil {
		t.Fatal(err)
	}
	ad, _ := ByName("csv")
	ds, err := ad.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	s := ds.Schema()
	if s.Dims[0].Name != "x" || s.Attrs[1].Name != "n" || s.Attrs[1].Type != array.TInt64 {
		t.Errorf("schema = %s", s)
	}
	// In-situ box scan without materializing.
	var got []float64
	err = ds.Scan(array.NewBox(array.Coord{2, 2}, array.Coord{2, 3}), func(c array.Coord, cell array.Cell) bool {
		got = append(got, cell[0].Float)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 22 || got[1] != 23 {
		t.Errorf("scan = %v", got)
	}
	// Materialize equals the original.
	m, err := Materialize(ds)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 16 {
		t.Errorf("materialized cells = %d", m.Count())
	}
}

func TestCSVNullsAndUncertain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "u.csv")
	content := "# scidb-csv\n# dims: i\n# attrs: v:float\n1,3.5±0.2\n2,NULL\n3,7\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := (CSVAdaptor{}).Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var cells []array.Cell
	_ = ds.Scan(array.NewBox(array.Coord{1}, array.Coord{10}), func(c array.Coord, cell array.Cell) bool {
		cells = append(cells, cell)
		return true
	})
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0][0].Float != 3.5 || cells[0][0].Sigma != 0.2 {
		t.Errorf("uncertain = %v", cells[0][0])
	}
	if !cells[1][0].Null {
		t.Error("NULL lost")
	}
	if cells[2][0].Float != 7 {
		t.Errorf("plain = %v", cells[2][0])
	}
}

func TestCSVErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	_ = os.WriteFile(bad, []byte("no marker\n"), 0o644)
	if _, err := (CSVAdaptor{}).Open(bad); err == nil {
		t.Error("missing marker accepted")
	}
	short := filepath.Join(dir, "short.csv")
	_ = os.WriteFile(short, []byte("# scidb-csv\n# dims: i\n# attrs: v:float\n1\n"), 0o644)
	ds, err := (CSVAdaptor{}).Open(short)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Scan(array.NewBox(array.Coord{1}, array.Coord{5}), func(array.Coord, array.Cell) bool { return true }); err == nil {
		t.Error("short row accepted")
	}
	badv := filepath.Join(dir, "badv.csv")
	_ = os.WriteFile(badv, []byte("# scidb-csv\n# dims: i\n# attrs: v:float\n1,notafloat\n"), 0o644)
	ds, _ = (CSVAdaptor{}).Open(badv)
	if err := ds.Scan(array.NewBox(array.Coord{1}, array.Coord{5}), func(array.Coord, array.Cell) bool { return true }); err == nil {
		t.Error("bad value accepted")
	}
	if _, err := (CSVAdaptor{}).Open(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestNCLRoundTrip(t *testing.T) {
	a := sampleArray(t)
	path := filepath.Join(t.TempDir(), "a.ncl")
	if err := WriteNCL(path, a); err != nil {
		t.Fatal(err)
	}
	ad, _ := ByName("ncl")
	ds, err := ad.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	s := ds.Schema()
	if s.Dims[0].High != 4 || s.Dims[1].High != 4 {
		t.Errorf("dims = %v", s.Dims)
	}
	// Random-access box scan reads only the box.
	var sum float64
	err = ds.Scan(array.NewBox(array.Coord{4, 4}, array.Coord{4, 4}), func(c array.Coord, cell array.Cell) bool {
		sum += cell[0].Float
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 44 {
		t.Errorf("cell(4,4) = %v, want 44", sum)
	}
	// Int variable round-trips.
	_ = ds.Scan(array.NewBox(array.Coord{2, 3}, array.Coord{2, 3}), func(c array.Coord, cell array.Cell) bool {
		if cell[1].Int != 6 {
			t.Errorf("int var = %v, want 6", cell[1])
		}
		return true
	})
}

func TestNCLRejectsStrings(t *testing.T) {
	s := &array.Schema{
		Name:  "s",
		Dims:  []array.Dimension{{Name: "i", High: 2}},
		Attrs: []array.Attribute{{Name: "t", Type: array.TString}},
	}
	a := array.MustNew(s)
	if err := WriteNCL(filepath.Join(t.TempDir(), "x.ncl"), a); err == nil {
		t.Error("string variable accepted")
	}
}

func TestNCLGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.ncl")
	_ = os.WriteFile(path, []byte("garbage"), 0o644)
	if _, err := (NCLAdaptor{}).Open(path); err == nil {
		t.Error("garbage NCL accepted")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("hdf5"); err == nil {
		t.Error("unknown adaptor accepted")
	}
	for _, n := range []string{"sdf", "csv", "ncl"} {
		a, err := ByName(n)
		if err != nil || a.Name() != n {
			t.Errorf("ByName(%q) = %v,%v", n, a, err)
		}
	}
}

func TestScanEarlyStopCSVAndNCL(t *testing.T) {
	a := sampleArray(t)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "a.csv")
	nclPath := filepath.Join(dir, "a.ncl")
	_ = WriteCSV(csvPath, a)
	_ = WriteNCL(nclPath, a)
	for _, tc := range []struct {
		name string
		open func() (Dataset, error)
	}{
		{"csv", func() (Dataset, error) { return (CSVAdaptor{}).Open(csvPath) }},
		{"ncl", func() (Dataset, error) { return (NCLAdaptor{}).Open(nclPath) }},
	} {
		ds, err := tc.open()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		n := 0
		_ = ds.Scan(array.NewBox(array.Coord{1, 1}, array.Coord{4, 4}), func(array.Coord, array.Cell) bool {
			n++
			return n < 3
		})
		ds.Close()
		if n != 3 {
			t.Errorf("%s early stop visited %d", tc.name, n)
		}
	}
}
