package insitu

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"scidb/internal/array"
)

// Sharder is implemented by datasets that can split themselves into
// disjoint sub-datasets for parallel scanning. The shards partition the
// dataset's cells: every cell appears in exactly one shard. Shards are
// views into the parent dataset — their Close is a no-op and the parent
// must stay open (and be closed by the caller) while shards are in use.
type Sharder interface {
	Shards(n int) ([]Dataset, error)
}

// Split cuts ds into at most n disjoint shards for parallel scanning,
// falling back to the dataset itself when it cannot split (or n <= 1).
// The returned slice is never empty.
func Split(ds Dataset, n int) ([]Dataset, error) {
	if n > 1 {
		if sh, ok := ds.(Sharder); ok {
			shards, err := sh.Shards(n)
			if err != nil {
				return nil, err
			}
			if len(shards) > 0 {
				return shards, nil
			}
		}
	}
	return []Dataset{ds}, nil
}

// splitRanges cuts [0, size) into at most n non-empty contiguous ranges
// {start, end}. It is the pure core of CSV byte-range sharding, kept
// separate so the boundary logic is directly fuzzable.
func splitRanges(size int64, n int) [][2]int64 {
	if size <= 0 || n < 1 {
		return nil
	}
	if int64(n) > size {
		n = int(size)
	}
	per := size / int64(n)
	rem := size % int64(n)
	out := make([][2]int64, 0, n)
	start := int64(0)
	for i := 0; i < n; i++ {
		end := start + per
		if int64(i) < rem {
			end++
		}
		if end > start {
			out = append(out, [2]int64{start, end})
		}
		start = end
	}
	return out
}

// --- CSV byte-range shards -------------------------------------------------

// Shards implements Sharder by splitting the file into byte ranges. A line
// belongs to the shard whose range contains its first byte (the classic
// split-file rule): each shard but the first discards the partial line at
// its start — the previous shard reads it in full, even past its range end —
// so every line is parsed exactly once no matter where the cuts land.
func (d *csvDataset) Shards(n int) ([]Dataset, error) {
	fi, err := os.Stat(d.path)
	if err != nil {
		return nil, err
	}
	ranges := splitRanges(fi.Size(), n)
	out := make([]Dataset, 0, len(ranges))
	for _, r := range ranges {
		out = append(out, &csvShard{path: d.path, schema: d.schema, start: r[0], end: r[1]})
	}
	return out, nil
}

// csvShard scans the lines of one byte range of a CSV file.
type csvShard struct {
	path       string
	schema     *array.Schema
	start, end int64
}

func (sh *csvShard) Schema() *array.Schema { return sh.schema }

func (sh *csvShard) Close() error { return nil }

func (sh *csvShard) Scan(box array.Box, fn func(array.Coord, array.Cell) bool) error {
	f, err := os.Open(sh.path)
	if err != nil {
		return err
	}
	defer f.Close()
	pos := sh.start
	if sh.start > 0 {
		// Seek to start-1 and discard through the next newline. If byte
		// start-1 is itself '\n', exactly one byte is consumed and the line
		// beginning at start is kept; otherwise the straddling line (owned
		// by the previous shard) is dropped.
		if _, err := f.Seek(sh.start-1, io.SeekStart); err != nil {
			return err
		}
		pos = sh.start - 1
	}
	r := bufio.NewReader(f)
	if sh.start > 0 {
		skipped, err := r.ReadString('\n')
		pos += int64(len(skipped))
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
	for pos < sh.end {
		lineStart := pos
		line, err := r.ReadString('\n')
		pos += int64(len(line))
		if len(line) > 0 {
			c, cell, ok, perr := parseCSVRecord(sh.schema, line)
			if perr != nil {
				return fmt.Errorf("insitu: %s@%d: %w", sh.path, lineStart, perr)
			}
			if ok && box.Contains(c) && !fn(c, cell) {
				return nil
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// --- NCL row slabs ---------------------------------------------------------

// Shards implements Sharder by slicing the outermost dimension into
// contiguous row slabs. NCL supports random access, so each slab reads only
// its own region of the file; the shards share the parent's file handle
// (ReadAt is safe for concurrent use).
func (d *nclDataset) Shards(n int) ([]Dataset, error) {
	return boxSlabs(d, d.schema, n), nil
}

// boxSlabs cuts the schema's outermost bounded dimension into n contiguous
// slabs, each a box-restricted view of ds.
func boxSlabs(ds Dataset, s *array.Schema, n int) []Dataset {
	whole := array.WholeBox(s)
	dim := 0
	rows := whole.Hi[dim] - whole.Lo[dim] + 1
	ranges := splitRanges(rows, n)
	out := make([]Dataset, 0, len(ranges))
	for _, r := range ranges {
		box := array.Box{Lo: whole.Lo.Clone(), Hi: whole.Hi.Clone()}
		box.Lo[dim] = whole.Lo[dim] + r[0]
		box.Hi[dim] = whole.Lo[dim] + r[1] - 1
		out = append(out, &boxShard{ds: ds, box: box})
	}
	return out
}

// boxShard restricts a dataset to a sub-box. Used for formats with random
// access, where scanning a sub-box touches only that region.
type boxShard struct {
	ds  Dataset
	box array.Box
}

func (sh *boxShard) Schema() *array.Schema { return sh.ds.Schema() }

func (sh *boxShard) Close() error { return nil }

func (sh *boxShard) Scan(box array.Box, fn func(array.Coord, array.Cell) bool) error {
	q, ok := sh.box.Intersect(box)
	if !ok {
		return nil
	}
	return sh.ds.Scan(q, fn)
}

// --- SDF / in-memory chunk-group shards ------------------------------------

// Shards implements Sharder by dealing the decoded chunks into n groups.
// SDF files are fully materialized on Open, so the shards are chunk-index
// partitions of the in-memory array.
func (d *memDataset) Shards(n int) ([]Dataset, error) {
	chunks := d.a.Chunks()
	if len(chunks) == 0 {
		return []Dataset{d}, nil
	}
	if n > len(chunks) {
		n = len(chunks)
	}
	out := make([]Dataset, n)
	for i := 0; i < n; i++ {
		out[i] = &chunkShard{schema: d.a.Schema, chunks: nil}
	}
	for i, ch := range chunks {
		sh := out[i%n].(*chunkShard)
		sh.chunks = append(sh.chunks, ch)
	}
	return out, nil
}

// chunkShard scans a fixed subset of an in-memory array's chunks.
type chunkShard struct {
	schema *array.Schema
	chunks []*array.Chunk
}

func (sh *chunkShard) Schema() *array.Schema { return sh.schema }

func (sh *chunkShard) Close() error { return nil }

func (sh *chunkShard) Scan(box array.Box, fn func(array.Coord, array.Cell) bool) error {
	for _, ch := range sh.chunks {
		inter, ok := ch.Box().Intersect(box)
		if !ok {
			continue
		}
		stop := false
		array.IterBox(inter, func(c array.Coord) bool {
			cell, present := ch.Get(c)
			if !present {
				return true
			}
			if !fn(c, cell) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return nil
		}
	}
	return nil
}
