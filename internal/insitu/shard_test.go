package insitu

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scidb/internal/array"
)

// collect scans ds over box and returns coord-key → rendered cell,
// failing on duplicate delivery (shards must partition, not overlap).
func collect(t *testing.T, ds Dataset, box array.Box) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := ds.Scan(box, func(c array.Coord, cell array.Cell) bool {
		k := c.Key()
		if _, dup := out[k]; dup {
			t.Fatalf("cell %v delivered twice", c)
		}
		out[k] = fmt.Sprint(cell)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// assertShardsPartition splits ds n ways and checks the shard union equals
// the whole-dataset scan with no overlaps.
func assertShardsPartition(t *testing.T, ds Dataset, n int) {
	t.Helper()
	box := scanAll(ds.Schema())
	whole := collect(t, ds, box)
	shards, err := Split(ds, n)
	if err != nil {
		t.Fatal(err)
	}
	union := map[string]string{}
	for si, sh := range shards {
		for k, v := range collect(t, sh, box) {
			if _, dup := union[k]; dup {
				t.Fatalf("n=%d: cell %s in two shards (second: shard %d)", n, k, si)
			}
			union[k] = v
		}
	}
	if len(union) != len(whole) {
		t.Fatalf("n=%d: shard union has %d cells, whole scan %d", n, len(union), len(whole))
	}
	for k, v := range whole {
		if union[k] != v {
			t.Fatalf("n=%d: cell %s = %q via shards, %q via whole scan", n, k, union[k], v)
		}
	}
}

func writeTestCSV(t *testing.T, lines []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	hdr := "# scidb-csv\n# dims: x, y\n# attrs: v:float, tag:string\n"
	if err := os.WriteFile(path, []byte(hdr+strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCSVShardsPartition(t *testing.T) {
	// Deliberately ragged line lengths so byte-range cuts land mid-line,
	// at line starts, and inside the header.
	var lines []string
	for i := 1; i <= 57; i++ {
		lines = append(lines, fmt.Sprintf("%d,%d,%g,%s", i, i%7+1, float64(i)*1.25, strings.Repeat("s", i%11)))
	}
	path := writeTestCSV(t, lines)
	ds, err := CSVAdaptor{}.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for _, n := range []int{1, 2, 3, 4, 7, 16, 1000} {
		assertShardsPartition(t, ds, n)
	}
}

func TestCSVShardBoundaryAtNewline(t *testing.T) {
	// Craft a file where a shard boundary falls exactly on a '\n' and
	// exactly on a line's first byte: equal-length lines make the cut
	// positions predictable.
	var lines []string
	for i := 1; i <= 8; i++ {
		lines = append(lines, fmt.Sprintf("%d,1,5.0,aa", i)) // 10 bytes + \n
	}
	path := writeTestCSV(t, lines)
	ds, err := CSVAdaptor{}.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= int(fi.Size()); n++ {
		assertShardsPartition(t, ds, n)
	}
}

func TestNCLShardsPartition(t *testing.T) {
	s := &array.Schema{
		Name:  "grid",
		Dims:  []array.Dimension{{Name: "x", High: 12}, {Name: "y", High: 5}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}, {Name: "k", Type: array.TInt64}},
	}
	a, err := array.New(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 12; i++ {
		for j := int64(1); j <= 5; j++ {
			if err := a.Set(array.Coord{i, j}, array.Cell{array.Float64(float64(i * j)), array.Int64(i - j)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "grid.ncl")
	if err := WriteNCL(path, a); err != nil {
		t.Fatal(err)
	}
	ds, err := NCLAdaptor{}.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for _, n := range []int{1, 2, 3, 5, 12, 40} {
		assertShardsPartition(t, ds, n)
	}
}

func TestSDFShardsPartition(t *testing.T) {
	s := &array.Schema{
		Name:  "sdf",
		Dims:  []array.Dimension{{Name: "x", High: 16, ChunkLen: 4}, {Name: "y", High: 16, ChunkLen: 4}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
	a, err := array.New(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 16; i += 3 {
		for j := int64(1); j <= 16; j++ {
			if err := a.Set(array.Coord{i, j}, array.Cell{array.Float64(float64(i + j))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "a.sdf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSDF(f, a); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ds, err := SDFAdaptor{}.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for _, n := range []int{1, 2, 4, 9, 100} {
		assertShardsPartition(t, ds, n)
	}
}

func TestSplitRangesCover(t *testing.T) {
	for size := int64(0); size <= 40; size++ {
		for n := 1; n <= 45; n++ {
			ranges := splitRanges(size, n)
			var covered int64
			prev := int64(0)
			for _, r := range ranges {
				if r[0] != prev {
					t.Fatalf("size=%d n=%d: gap before %v", size, n, r)
				}
				if r[1] <= r[0] {
					t.Fatalf("size=%d n=%d: empty range %v", size, n, r)
				}
				covered += r[1] - r[0]
				prev = r[1]
			}
			if covered != size {
				t.Fatalf("size=%d n=%d: ranges cover %d bytes", size, n, covered)
			}
		}
	}
}

// FuzzCSVShardSplit drives the shard boundary logic with arbitrary line
// lengths and shard counts: the union of all shard scans must equal the
// whole-file scan, with every line delivered exactly once.
func FuzzCSVShardSplit(f *testing.F) {
	f.Add([]byte{3, 0, 10, 200}, uint8(3))
	f.Add([]byte{1}, uint8(1))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(8))
	f.Fuzz(func(t *testing.T, widths []byte, nShards uint8) {
		if len(widths) == 0 || len(widths) > 64 {
			t.Skip()
		}
		n := int(nShards)%32 + 1
		var sb strings.Builder
		sb.WriteString("# scidb-csv\n# dims: x\n# attrs: v:float, tag:string\n")
		for i, wb := range widths {
			// One data line per input byte; the byte sets the tag width so
			// line lengths (and therefore cut positions) vary freely.
			fmt.Fprintf(&sb, "%d,%g,%s\n", i+1, float64(i)*0.5, strings.Repeat("x", int(wb)%29))
		}
		path := filepath.Join(t.TempDir(), "fuzz.csv")
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		ds, err := CSVAdaptor{}.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		box := scanAll(ds.Schema())
		whole := map[string]string{}
		if err := ds.Scan(box, func(c array.Coord, cell array.Cell) bool {
			whole[c.Key()] = fmt.Sprint(cell)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		shards, err := Split(ds, n)
		if err != nil {
			t.Fatal(err)
		}
		union := map[string]string{}
		for _, sh := range shards {
			if err := sh.Scan(box, func(c array.Coord, cell array.Cell) bool {
				k := c.Key()
				if _, dup := union[k]; dup {
					t.Fatalf("n=%d: cell %s delivered by two shards", n, k)
				}
				union[k] = fmt.Sprint(cell)
				return true
			}); err != nil {
				t.Fatal(err)
			}
		}
		if len(union) != len(whole) {
			t.Fatalf("n=%d: shards delivered %d cells, whole scan %d", n, len(union), len(whole))
		}
		for k, v := range whole {
			if union[k] != v {
				t.Fatalf("n=%d: cell %s = %q via shards, %q whole", n, k, union[k], v)
			}
		}
	})
}
