// Package insitu implements §2.9: operating on data "in situ", without a
// load process. It defines SDF, a self-describing binary array format, and
// adaptors for external formats — CSV and NCL, a NetCDF-like container we
// also implement (stdlib-only substitute for HDF-5/NetCDF; see DESIGN.md).
// A Dataset can be scanned and queried directly from the file; the INSITU
// experiment compares that against load-then-query.
//
// As the paper notes, in-situ data gets no DBMS services such as recovery:
// it stays under user control.
package insitu

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"scidb/internal/array"
	"scidb/internal/storage"
)

// Dataset is a queryable view over external data, usable without loading.
type Dataset interface {
	// Schema describes the data.
	Schema() *array.Schema
	// Scan visits every cell intersecting the box. Return false to stop.
	Scan(box array.Box, fn func(array.Coord, array.Cell) bool) error
	// Close releases resources.
	Close() error
}

// Adaptor opens a path in one external format.
type Adaptor interface {
	Name() string
	Open(path string) (Dataset, error)
}

// ByName returns a registered adaptor ("sdf", "csv", "ncl").
func ByName(name string) (Adaptor, error) {
	switch name {
	case "sdf":
		return SDFAdaptor{}, nil
	case "csv":
		return CSVAdaptor{}, nil
	case "ncl":
		return NCLAdaptor{}, nil
	}
	return nil, fmt.Errorf("insitu: unknown adaptor %q", name)
}

// Materialize loads a dataset fully into an in-memory array — the "load
// stage" the paper's users complain about, measured by the INSITU
// experiment.
func Materialize(ds Dataset) (*array.Array, error) {
	s := ds.Schema().Clone()
	a, err := array.New(s)
	if err != nil {
		return nil, err
	}
	box := scanAll(s)
	var werr error
	err = ds.Scan(box, func(c array.Coord, cell array.Cell) bool {
		if err := a.Set(c.Clone(), cell); err != nil {
			werr = err
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return a, werr
}

// scanAll builds a box covering a schema (bounded dims, or a large range
// for unbounded ones).
func scanAll(s *array.Schema) array.Box {
	lo := make(array.Coord, len(s.Dims))
	hi := make(array.Coord, len(s.Dims))
	for i, d := range s.Dims {
		lo[i] = 1
		if d.High == array.Unbounded {
			hi[i] = 1 << 40
		} else {
			hi[i] = d.High
		}
	}
	return array.Box{Lo: lo, Hi: hi}
}

// --- SDF: the self-describing SciDB format -------------------------------

// sdfMagic begins every SDF file.
var sdfMagic = []byte("SDF1")

// sdfHeader is the JSON-encoded self-description.
type sdfHeader struct {
	Schema *array.Schema `json:"schema"`
	Chunks int           `json:"chunks"`
}

// WriteSDF writes an array with its schema — "a self-describing data
// format" any SciDB node can open without a catalog.
func WriteSDF(w io.Writer, a *array.Array) error {
	hdr, err := json.Marshal(sdfHeader{Schema: a.Schema, Chunks: len(a.Chunks())})
	if err != nil {
		return err
	}
	if _, err := w.Write(sdfMagic); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(hdr))); err != nil {
		return err
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	payload, err := storage.EncodeArray(a)
	if err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(payload))); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadSDF reads a self-describing array.
func ReadSDF(r io.Reader) (*array.Array, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != string(sdfMagic) {
		return nil, fmt.Errorf("insitu: not an SDF file")
	}
	hlen, err := readU32(r)
	if err != nil {
		return nil, err
	}
	hbuf := make([]byte, hlen)
	if _, err := io.ReadFull(r, hbuf); err != nil {
		return nil, err
	}
	var hdr sdfHeader
	if err := json.Unmarshal(hbuf, &hdr); err != nil {
		return nil, fmt.Errorf("insitu: bad SDF header: %w", err)
	}
	if hdr.Schema == nil {
		return nil, fmt.Errorf("insitu: SDF header missing schema")
	}
	plen, err := readU32(r)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return storage.DecodeArray(hdr.Schema, payload)
}

// SDFAdaptor opens SDF files as datasets.
type SDFAdaptor struct{}

// Name implements Adaptor.
func (SDFAdaptor) Name() string { return "sdf" }

// Open implements Adaptor.
func (SDFAdaptor) Open(path string) (Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := ReadSDF(f)
	if err != nil {
		return nil, err
	}
	return &memDataset{a: a}, nil
}

// memDataset adapts an in-memory array to the Dataset interface.
type memDataset struct{ a *array.Array }

func (d *memDataset) Schema() *array.Schema { return d.a.Schema }

func (d *memDataset) Scan(box array.Box, fn func(array.Coord, array.Cell) bool) error {
	d.a.Iter(func(c array.Coord, cell array.Cell) bool {
		if !box.Contains(c) {
			return true
		}
		return fn(c, cell)
	})
	return nil
}

func (d *memDataset) Close() error { return nil }

func writeU32(w io.Writer, v uint32) error {
	_, err := w.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	return err
}

func readU32(r io.Reader) (uint32, error) {
	b := make([]byte, 4)
	if _, err := io.ReadFull(r, b); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}
