package parser

import (
	"strconv"
	"strings"
)

// Parse parses one AQL statement into its parse tree.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	msg := format
	if len(args) > 0 {
		msg = sprintf(format, args...)
	}
	return &Error{Pos: p.peek().pos, Msg: msg}
}

func sprintf(format string, args ...interface{}) string {
	// tiny indirection to keep fmt out of hot paths elsewhere
	return fmtSprintf(format, args...)
}

// isKeyword reports whether the next token is the given keyword
// (case-insensitive).
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) expectInt() (int64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errf("expected number, got %q", t.text)
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf("expected integer, got %q", t.text)
	}
	p.advance()
	return v, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.isKeyword("explain"):
		return p.parseExplain()
	case p.isKeyword("define"):
		return p.parseDefine()
	case p.isKeyword("create"):
		return p.parseCreate()
	case p.isKeyword("enhance"):
		return p.parseEnhance()
	case p.isKeyword("shape"):
		return p.parseShape()
	case p.isKeyword("insert"):
		return p.parseInsert()
	case p.isKeyword("delete"):
		return p.parseDelete()
	case p.isKeyword("load"):
		return p.parseLoad()
	case p.isKeyword("attach"):
		return p.parseAttach()
	case p.isKeyword("store"):
		return p.parseStore()
	case p.isKeyword("show"):
		return p.parseShow()
	case p.isKeyword("cancel"):
		return p.parseCancel()
	default:
		e, err := p.parseArrayExpr()
		if err != nil {
			return nil, err
		}
		return &Query{Expr: e}, nil
	}
}

// SHOW QUERIES
func (p *parser) parseShow() (Stmt, error) {
	p.advance() // show
	if err := p.expectKeyword("queries"); err != nil {
		return nil, err
	}
	return &ShowQueries{}, nil
}

// CANCEL QUERY <id>
func (p *parser) parseCancel() (Stmt, error) {
	p.advance() // cancel
	if err := p.expectKeyword("query"); err != nil {
		return nil, err
	}
	id, err := p.expectInt()
	if err != nil {
		return nil, err
	}
	if id <= 0 {
		return nil, p.errf("query id must be positive, got %d", id)
	}
	return &CancelQuery{ID: id}, nil
}

// EXPLAIN [ANALYZE] <stmt>
func (p *parser) parseExplain() (Stmt, error) {
	p.advance() // explain
	analyze := p.acceptKeyword("analyze")
	if p.isKeyword("explain") {
		return nil, p.errf("explain cannot nest")
	}
	inner, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &Explain{Analyze: analyze, Stmt: inner}, nil
}

// DEFINE [UPDATABLE] ARRAY name (a = type, ...) [d1, d2]
// DEFINE FUNCTION name (type p, ...) RETURNS (type q, ...) 'handle'
func (p *parser) parseDefine() (Stmt, error) {
	p.advance() // define
	if p.isKeyword("function") {
		return p.parseDefineFunction()
	}
	upd := p.acceptKeyword("updatable")
	if err := p.expectKeyword("array"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var attrs []AttrDef
	for {
		an, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		unc := p.acceptKeyword("uncertain")
		tn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, AttrDef{Name: an, Type: strings.ToLower(tn), Uncertain: unc})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// Dimensions in (...) or [...]; the paper uses (I, J), our create uses
	// [..]; accept both.
	close := ")"
	if p.acceptPunct("[") {
		close = "]"
	} else if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var dims []string
	for {
		dn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		dims = append(dims, dn)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(close); err != nil {
		return nil, err
	}
	return &DefineArray{Name: name, Updatable: upd, Attrs: attrs, DimNames: dims}, nil
}

// parseDefineFunction parses the paper's UDF declaration.
func (p *parser) parseDefineFunction() (Stmt, error) {
	p.advance() // function
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	in, err := p.parseParamList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("returns"); err != nil {
		return nil, err
	}
	out, err := p.parseParamList()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokString {
		return nil, p.errf("expected quoted function handle, got %q", t.text)
	}
	p.advance()
	return &DefineFunction{Name: name, In: in, Out: out, Handle: t.text}, nil
}

// parseParamList parses "(type name, type name, ...)".
func (p *parser) parseParamList() ([]ParamDef, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []ParamDef
	for {
		tn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, ParamDef{Type: strings.ToLower(tn), Name: pn})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return out, nil
}

// CREATE ARRAY name AS type [b1, b2]
//
//	| CREATE ARRAY name FROM FILE 'path' [USING adaptor]
//	| CREATE VERSION v FROM a [PARENT p]
func (p *parser) parseCreate() (Stmt, error) {
	p.advance() // create
	if p.acceptKeyword("version") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("from"); err != nil {
			return nil, err
		}
		arr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		parent := ""
		if p.acceptKeyword("parent") {
			parent, err = p.expectIdent()
			if err != nil {
				return nil, err
			}
		}
		return &CreateVersion{Name: name, Array: arr, Parent: parent}, nil
	}
	if err := p.expectKeyword("array"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("from") {
		if err := p.expectKeyword("file"); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokString {
			return nil, p.errf("expected quoted path, got %q", t.text)
		}
		p.advance()
		adaptor := "sdf"
		if p.acceptKeyword("using") {
			adaptor, err = p.expectIdent()
			if err != nil {
				return nil, err
			}
		}
		return &CreateFromFile{Name: name, Path: t.text, Adaptor: strings.ToLower(adaptor)}, nil
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	tn, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	var bounds []int64
	for {
		if p.acceptPunct("*") {
			bounds = append(bounds, -1)
		} else {
			v, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			bounds = append(bounds, v)
		}
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return &CreateArray{Name: name, TypeName: tn, Bounds: bounds}, nil
}

func (p *parser) parseEnhance() (Stmt, error) {
	p.advance()
	arr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("with"); err != nil {
		return nil, err
	}
	fn, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &Enhance{Array: arr, Func: fn}, nil
}

func (p *parser) parseShape() (Stmt, error) {
	p.advance()
	arr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("with"); err != nil {
		return nil, err
	}
	fn, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var args []int64
	if p.acceptPunct("(") {
		for {
			v, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			args = append(args, v)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return &Shape{Array: arr, Func: fn, Args: args}, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	p.advance()
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	arr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	coord, err := p.parseCoord()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var vals []Scalar
	for {
		s, err := p.parseScalar()
		if err != nil {
			return nil, err
		}
		vals = append(vals, s)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &Insert{Array: arr, Coord: coord, Values: vals}, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.advance()
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	arr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	coord, err := p.parseCoord()
	if err != nil {
		return nil, err
	}
	return &Delete{Array: arr, Coord: coord}, nil
}

func (p *parser) parseCoord() ([]int64, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	var coord []int64
	for {
		v, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		coord = append(coord, v)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return coord, nil
}

func (p *parser) parseLoad() (Stmt, error) {
	p.advance()
	arr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokString {
		return nil, p.errf("expected quoted path, got %q", t.text)
	}
	p.advance()
	adaptor := "sdf"
	if p.acceptKeyword("using") {
		adaptor, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	}
	return &Load{Array: arr, Path: t.text, Adaptor: strings.ToLower(adaptor)}, nil
}

func (p *parser) parseAttach() (Stmt, error) {
	p.advance()
	arr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokString {
		return nil, p.errf("expected quoted path, got %q", t.text)
	}
	p.advance()
	adaptor := "sdf"
	if p.acceptKeyword("using") {
		adaptor, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	}
	return &Attach{Array: arr, Path: t.text, Adaptor: strings.ToLower(adaptor)}, nil
}

func (p *parser) parseStore() (Stmt, error) {
	p.advance()
	e, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &Store{Expr: e, Target: name}, nil
}

func (p *parser) parseScalar() (Scalar, error) {
	t := p.peek()
	switch {
	case t.kind == tokParam:
		p.advance()
		idx, err := strconv.Atoi(t.text)
		if err != nil || idx < 1 {
			return Scalar{}, p.errf("bad parameter $%s (parameters are $1, $2, ...)", t.text)
		}
		return Scalar{IsParam: true, ParamIdx: idx}, nil
	case t.kind == tokString:
		p.advance()
		return Scalar{IsString: true, Str: t.text}, nil
	case t.kind == tokNumber:
		p.advance()
		s := Scalar{}
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil && !strings.ContainsAny(t.text, ".eE") {
			s.IsInt, s.Int, s.Num = true, i, float64(i)
		} else {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Scalar{}, p.errf("bad number %q", t.text)
			}
			s.Num = f
		}
		// optional error bar "± sigma"
		if p.acceptPunct("±") {
			st := p.peek()
			if st.kind != tokNumber {
				return Scalar{}, p.errf("expected sigma after ±")
			}
			sg, err := strconv.ParseFloat(st.text, 64)
			if err != nil {
				return Scalar{}, p.errf("bad sigma %q", st.text)
			}
			p.advance()
			s.Sigma = sg
			s.IsInt = false
		}
		return s, nil
	case p.isKeyword("null"):
		p.advance()
		return Scalar{IsNull: true}, nil
	case p.isKeyword("true"):
		p.advance()
		return Scalar{IsInt: true, Int: 1, Num: 1}, nil
	case p.isKeyword("false"):
		p.advance()
		return Scalar{IsInt: true, Int: 0, Num: 0}, nil
	}
	return Scalar{}, p.errf("expected literal, got %q", t.text)
}
