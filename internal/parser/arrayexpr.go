package parser

import (
	"fmt"
	"strings"
)

func fmtSprintf(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}

// operator keywords that introduce array expressions.
var arrayOps = map[string]bool{
	"subsample": true, "filter": true, "aggregate": true, "sjoin": true,
	"cjoin": true, "apply": true, "project": true, "reshape": true,
	"regrid": true, "window": true, "cross": true, "concat": true, "adddim": true,
	"remdim": true, "version": true, "scan": true, "exists": true,
}

func (p *parser) parseArrayExpr() (ArrayExpr, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf("expected array expression, got %q", t.text)
	}
	op := strings.ToLower(t.text)
	if !arrayOps[op] {
		// Plain array reference; a dotted name ("sys.queries") addresses a
		// virtual system array.
		p.advance()
		name := t.text
		if p.acceptPunct(".") {
			part, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			name = name + "." + part
		}
		return &Ref{Name: name}, nil
	}
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var (
		node ArrayExpr
		err  error
	)
	switch op {
	case "scan":
		name, e := p.expectIdent()
		if e != nil {
			return nil, e
		}
		if p.acceptPunct(".") {
			part, e := p.expectIdent()
			if e != nil {
				return nil, e
			}
			name = name + "." + part
		}
		node = &Ref{Name: name}
	case "exists":
		arr, e := p.expectIdent()
		if e != nil {
			return nil, e
		}
		ex := &ExistsExpr{Array: arr}
		for p.acceptPunct(",") {
			v, e := p.expectInt()
			if e != nil {
				return nil, e
			}
			ex.Coord = append(ex.Coord, v)
		}
		if len(ex.Coord) == 0 {
			return nil, p.errf("exists needs a coordinate")
		}
		node = ex
	case "version":
		arr, e := p.expectIdent()
		if e != nil {
			return nil, e
		}
		if e := p.expectPunct(","); e != nil {
			return nil, e
		}
		name, e := p.expectIdent()
		if e != nil {
			return nil, e
		}
		node = &VersionExpr{Array: arr, Name: name}
	case "subsample":
		node, err = p.parseSubsample()
	case "filter":
		node, err = p.parseFilter()
	case "aggregate":
		node, err = p.parseAggregate()
	case "sjoin":
		node, err = p.parseSjoin()
	case "cjoin":
		node, err = p.parseCjoin()
	case "apply":
		node, err = p.parseApply()
	case "project":
		node, err = p.parseProject()
	case "reshape":
		node, err = p.parseReshape()
	case "regrid":
		node, err = p.parseRegrid()
	case "window":
		node, err = p.parseWindow()
	case "cross":
		node, err = p.parseCross()
	case "concat":
		node, err = p.parseConcat()
	case "adddim", "remdim":
		node, err = p.parseDimOp(op)
	}
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return node, nil
}

func (p *parser) parseSubsample() (ArrayExpr, error) {
	in, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	var conds []DimCond
	for {
		c, err := p.parseDimCond()
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
		if p.acceptKeyword("and") {
			continue
		}
		break
	}
	return &SubsampleExpr{In: in, Pred: conds}, nil
}

func (p *parser) parseDimCond() (DimCond, error) {
	if p.isKeyword("even") || p.isKeyword("odd") {
		op := strings.ToLower(p.advance().text)
		if err := p.expectPunct("("); err != nil {
			return DimCond{}, err
		}
		dim, err := p.expectIdent()
		if err != nil {
			return DimCond{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return DimCond{}, err
		}
		return DimCond{Dim: dim, Op: op}, nil
	}
	dim, err := p.expectIdent()
	if err != nil {
		return DimCond{}, err
	}
	t := p.peek()
	if t.kind != tokPunct {
		return DimCond{}, p.errf("expected comparison, got %q", t.text)
	}
	op := t.text
	switch op {
	case "<", "<=", ">", ">=", "=", "!=":
	default:
		return DimCond{}, p.errf("bad dimension comparison %q", op)
	}
	p.advance()
	// The other side must be an integer literal — a dimension name here
	// would be the outlawed cross-dimension predicate ("X = Y is not
	// legal").
	if p.peek().kind == tokIdent {
		return DimCond{}, p.errf("subsample predicates must compare a dimension to a constant; %q is not legal", dim+" "+op+" "+p.peek().text)
	}
	v, err := p.expectInt()
	if err != nil {
		return DimCond{}, err
	}
	return DimCond{Dim: dim, Op: op, Value: v}, nil
}

func (p *parser) parseFilter() (ArrayExpr, error) {
	in, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	pred, err := p.parseValExpr()
	if err != nil {
		return nil, err
	}
	return &FilterExpr{In: in, Pred: pred}, nil
}

func (p *parser) parseAggregate() (ArrayExpr, error) {
	in, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var dims []string
	if !p.acceptPunct("}") {
		for {
			d, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			dims = append(dims, d)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	var aggs []AggSpec
	for {
		a, err := p.parseAggSpec()
		if err != nil {
			return nil, err
		}
		aggs = append(aggs, a)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	return &AggregateExpr{In: in, GroupDims: dims, Aggs: aggs}, nil
}

func (p *parser) parseAggSpec() (AggSpec, error) {
	fn, err := p.expectIdent()
	if err != nil {
		return AggSpec{}, err
	}
	if err := p.expectPunct("("); err != nil {
		return AggSpec{}, err
	}
	attr := "*"
	if !p.acceptPunct("*") {
		attr, err = p.expectIdent()
		if err != nil {
			return AggSpec{}, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return AggSpec{}, err
	}
	as := ""
	if p.acceptKeyword("as") {
		as, err = p.expectIdent()
		if err != nil {
			return AggSpec{}, err
		}
	}
	return AggSpec{Func: strings.ToLower(fn), Attr: attr, As: as}, nil
}

func (p *parser) parseSjoin() (ArrayExpr, error) {
	l, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	r, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	var pairs []JoinPair
	for {
		// a.I = b.J — qualified on both sides; the qualifier is ignored
		// positionally (left side refers to the left array).
		lq, err := p.parseQualified()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		rq, err := p.parseQualified()
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, JoinPair{Left: lq, Right: rq})
		if p.acceptKeyword("and") {
			continue
		}
		break
	}
	return &SjoinExpr{L: l, R: r, On: pairs}, nil
}

// parseQualified parses ident or ident.ident, returning the last component.
func (p *parser) parseQualified() (string, error) {
	a, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	if p.acceptPunct(".") {
		b, err := p.expectIdent()
		if err != nil {
			return "", err
		}
		return b, nil
	}
	return a, nil
}

func (p *parser) parseCjoin() (ArrayExpr, error) {
	l, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	r, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	pred, err := p.parseValExpr()
	if err != nil {
		return nil, err
	}
	return &CjoinExpr{L: l, R: r, Pred: pred}, nil
}

func (p *parser) parseApply() (ArrayExpr, error) {
	in, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	out := &ApplyExpr{In: in}
	for p.acceptPunct(",") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseValExpr()
		if err != nil {
			return nil, err
		}
		out.Names = append(out.Names, name)
		out.Exprs = append(out.Exprs, e)
	}
	if len(out.Names) == 0 {
		return nil, p.errf("apply needs at least one name = expr")
	}
	return out, nil
}

func (p *parser) parseProject() (ArrayExpr, error) {
	in, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	out := &ProjectExpr{In: in}
	for p.acceptPunct(",") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out.Attrs = append(out.Attrs, a)
	}
	if len(out.Attrs) == 0 {
		return nil, p.errf("project needs at least one attribute")
	}
	return out, nil
}

func (p *parser) parseReshape() (ArrayExpr, error) {
	in, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	out := &ReshapeExpr{In: in}
	for {
		d, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out.Order = append(out.Order, d)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	for {
		// U = 1:8
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		lo, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		if lo != 1 {
			return nil, p.errf("dimension %s must start at 1", name)
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		hi, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		out.NewDims = append(out.NewDims, NewDim{Name: name, High: hi})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseRegrid() (ArrayExpr, error) {
	in, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	out := &RegridExpr{In: in}
	for {
		v, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		out.Strides = append(out.Strides, v)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	agg, err := p.parseAggSpec()
	if err != nil {
		return nil, err
	}
	out.Agg = agg
	return out, nil
}

func (p *parser) parseWindow() (ArrayExpr, error) {
	in, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	out := &WindowExpr{In: in}
	for {
		v, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		out.Radius = append(out.Radius, v)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	agg, err := p.parseAggSpec()
	if err != nil {
		return nil, err
	}
	out.Agg = agg
	return out, nil
}

func (p *parser) parseCross() (ArrayExpr, error) {
	l, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	r, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	return &CrossExpr{L: l, R: r}, nil
}

func (p *parser) parseConcat() (ArrayExpr, error) {
	l, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	r, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	d, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &ConcatExpr{L: l, R: r, Dim: d}, nil
}

func (p *parser) parseDimOp(op string) (ArrayExpr, error) {
	in, err := p.parseArrayExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if op == "adddim" {
		return &AddDimExpr{In: in, Name: name}, nil
	}
	return &RemDimExpr{In: in, Name: name}, nil
}

// --- value expressions: precedence climbing --------------------------------

func (p *parser) parseValExpr() (ValExpr, error) { return p.parseOr() }

func (p *parser) parseOr() (ValExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (ValExpr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (ValExpr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (ValExpr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.advance()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (ValExpr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokPunct && (t.text == "+" || t.text == "-") {
			p.advance()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (ValExpr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokPunct && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.advance()
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parsePrimary() (ValExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber, t.kind == tokString, t.kind == tokParam,
		p.isKeyword("null"), p.isKeyword("true"), p.isKeyword("false"):
		s, err := p.parseScalar()
		if err != nil {
			return nil, err
		}
		return &Lit{V: s}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.parseValExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		name, _ := p.expectIdent()
		// UDF call?
		if p.acceptPunct("(") {
			call := &CallExpr{Name: name}
			if !p.acceptPunct(")") {
				for {
					a, err := p.parseValExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.acceptPunct(",") {
						continue
					}
					break
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		// Qualified attribute B.val: the planner resolves qualified names
		// against join outputs ("B_val").
		if p.acceptPunct(".") {
			f, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &Ident{Name: name + "." + f}, nil
		}
		return &Ident{Name: name}, nil
	}
	return nil, p.errf("expected expression, got %q", t.text)
}
