package parser

import (
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single/multi char punctuation: ( ) [ ] { } , = < > <= >= != . : * ±
	tokParam // $N statement parameter placeholder; text holds the digits
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// -- comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	// Multi-byte ± (UTF-8 0xC2 0xB1) — must be checked before the
	// identifier branch, which would otherwise eat the lead byte.
	if c == 0xC2 && l.pos+1 < len(l.src) && l.src[l.pos+1] == 0xB1 {
		l.pos += 2
		return token{kind: tokPunct, text: "±", pos: start}, nil
	}
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			(l.src[l.pos] == '-' || l.src[l.pos] == '+') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '$':
		l.pos++
		ds := l.pos
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		if l.pos == ds {
			return token{}, &Error{Pos: start, Msg: "expected digits after $ (parameters are $1, $2, ...)"}
		}
		return token{kind: tokParam, text: l.src[ds:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, &Error{Pos: start, Msg: "unterminated string"}
		}
		l.pos++ // closing quote
		return token{kind: tokString, text: b.String(), pos: start}, nil
	}
	// Two-char operators.
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		switch two {
		case "<=", ">=", "!=", "<>", "==", "+-":
			l.pos += 2
			if two == "<>" {
				two = "!="
			}
			if two == "==" {
				two = "="
			}
			if two == "+-" {
				two = "±"
			}
			return token{kind: tokPunct, text: two, pos: start}, nil
		}
	}
	switch c {
	case '(', ')', '[', ']', '{', '}', ',', '=', '<', '>', '.', ':', '*', '+', '-', '/', '%':
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	}
	return token{}, &Error{Pos: start, Msg: "unexpected character " + string(rune(c))}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
