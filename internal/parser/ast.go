// Package parser implements SciDB's command representation (§2.4): a
// parse-tree format for commands, produced by the AQL text front end and by
// the fluent Go language binding alike. "There will be multiple language
// bindings. These will map from the language-specific representation to
// this parse tree format." The executor (internal/plan) consumes only the
// tree, never the text.
package parser

import "fmt"

// Stmt is any parsed statement.
type Stmt interface{ stmtNode() }

// AttrDef is one attribute in a DEFINE ARRAY statement.
type AttrDef struct {
	Name      string
	Type      string
	Uncertain bool
}

// DefineArray is
//
//	DEFINE [UPDATABLE] ARRAY Remote (s1 = float, ...) [I, J]
type DefineArray struct {
	Name      string
	Updatable bool
	Attrs     []AttrDef
	DimNames  []string
}

func (*DefineArray) stmtNode() {}

// DefineFunction is the paper's UDF declaration:
//
//	DEFINE FUNCTION Scale10 (integer I, integer J)
//	    RETURNS (integer K, integer L) 'go:Scale10'
//
// The handle replaces the paper's object-code file_handle: "go:<name>"
// binds the declared signature to a Go body registered under <name>
// (see DESIGN.md's substitution table).
type DefineFunction struct {
	Name   string
	In     []ParamDef
	Out    []ParamDef
	Handle string
}

func (*DefineFunction) stmtNode() {}

// ParamDef is one typed parameter of a function signature.
type ParamDef struct {
	Type string
	Name string
}

// CreateArray is
//
//	CREATE ARRAY My_remote AS Remote [1024, 1024]
//
// Bounds entries of -1 mean "*" (unbounded).
type CreateArray struct {
	Name     string
	TypeName string
	Bounds   []int64
}

func (*CreateArray) stmtNode() {}

// CreateFromFile is
//
//	CREATE ARRAY Sky FROM FILE '/data/sky.csv' USING csv
//
// It registers an external file as a first-class array without a load step
// (§2.9): the schema comes from the file itself, and on a cluster every
// worker materializes its slab of the file lazily through the adaptor.
type CreateFromFile struct {
	Name    string
	Path    string
	Adaptor string
}

func (*CreateFromFile) stmtNode() {}

// Enhance is "ENHANCE My_remote WITH Scale10".
type Enhance struct {
	Array string
	Func  string
}

func (*Enhance) stmtNode() {}

// Shape is "SHAPE My_remote WITH circle(5, 5, 3)".
type Shape struct {
	Array string
	Func  string
	Args  []int64
}

func (*Shape) stmtNode() {}

// Insert is "INSERT INTO A [1, 2] VALUES (3.5, 'x')".
type Insert struct {
	Array  string
	Coord  []int64
	Values []Scalar
}

func (*Insert) stmtNode() {}

// Delete is "DELETE FROM A [1, 2]".
type Delete struct {
	Array string
	Coord []int64
}

func (*Delete) stmtNode() {}

// Attach is "ATTACH A FROM 'path' USING ncl": registers an external file
// for in-situ querying (§2.9) — no load step; the engine reads the file on
// demand and pushes subsample boxes down into the adaptor scan.
type Attach struct {
	Array   string
	Path    string
	Adaptor string
}

func (*Attach) stmtNode() {}

// Load is "LOAD A FROM 'path' USING csv".
type Load struct {
	Array   string
	Path    string
	Adaptor string
}

func (*Load) stmtNode() {}

// Store is "STORE <array expr> INTO name".
type Store struct {
	Expr   ArrayExpr
	Target string
}

func (*Store) stmtNode() {}

// Query evaluates and returns an array expression.
type Query struct {
	Expr ArrayExpr
}

func (*Query) stmtNode() {}

// Explain is "EXPLAIN [ANALYZE] <stmt>". Plain EXPLAIN prints the plan
// tree without running the statement; EXPLAIN ANALYZE runs it under a
// trace and prints the per-operator profile (with per-node breakdown on a
// cluster).
type Explain struct {
	Analyze bool
	Stmt    Stmt
}

func (*Explain) stmtNode() {}

// CreateVersion is "CREATE VERSION v FROM a [PARENT p]".
type CreateVersion struct {
	Name   string
	Array  string
	Parent string
}

func (*CreateVersion) stmtNode() {}

// ShowQueries is "SHOW QUERIES": the live query registry rendered as the
// sys.queries system array.
type ShowQueries struct{}

func (*ShowQueries) stmtNode() {}

// CancelQuery is "CANCEL QUERY <id>": fire the registered cancel func of
// the statement with that registry id (any session, any transport).
type CancelQuery struct {
	ID int64
}

func (*CancelQuery) stmtNode() {}

// Scalar is a literal, or a statement parameter placeholder ($1, $2, ...)
// awaiting a value at bind time (prepared statements parse once and bind
// per execution — see Bind).
type Scalar struct {
	IsString bool
	IsNull   bool
	Str      string
	Num      float64
	IsInt    bool
	Int      int64
	Sigma    float64 // error bar: 3.5 +- 0.2

	// IsParam marks a $N placeholder; ParamIdx is its 1-based index.
	IsParam  bool
	ParamIdx int
}

// --- array expressions ----------------------------------------------------

// ArrayExpr is a node producing an array.
type ArrayExpr interface{ arrayNode() }

// Ref names a stored array.
type Ref struct{ Name string }

func (*Ref) arrayNode() {}

// SubsampleExpr is SUBSAMPLE(in, <dim conjunction>).
type SubsampleExpr struct {
	In   ArrayExpr
	Pred []DimCond
}

func (*SubsampleExpr) arrayNode() {}

// DimCond is one conjunct: Dim Op Value, or a named predicate (even/odd).
type DimCond struct {
	Dim   string
	Op    string // "<", "<=", ">", ">=", "=", "!=", "even", "odd"
	Value int64
}

// FilterExpr is FILTER(in, pred).
type FilterExpr struct {
	In   ArrayExpr
	Pred ValExpr
}

func (*FilterExpr) arrayNode() {}

// AggSpec is one aggregate call, e.g. SUM(*) or AVG(v) AS mean.
type AggSpec struct {
	Func string
	Attr string // "*" for the first attribute
	As   string
}

// AggregateExpr is AGGREGATE(in, {dims}, aggs...).
type AggregateExpr struct {
	In        ArrayExpr
	GroupDims []string
	Aggs      []AggSpec
}

func (*AggregateExpr) arrayNode() {}

// JoinPair is one "A.I = B.J" conjunct of a join predicate.
type JoinPair struct{ Left, Right string }

// SjoinExpr is SJOIN(a, b, a.I = b.I, ...), dimensions only.
type SjoinExpr struct {
	L, R ArrayExpr
	On   []JoinPair
}

func (*SjoinExpr) arrayNode() {}

// CjoinExpr is CJOIN(a, b, pred-over-values).
type CjoinExpr struct {
	L, R ArrayExpr
	Pred ValExpr
}

func (*CjoinExpr) arrayNode() {}

// ApplyExpr is APPLY(in, name = expr, ...).
type ApplyExpr struct {
	In    ArrayExpr
	Names []string
	Exprs []ValExpr
}

func (*ApplyExpr) arrayNode() {}

// ProjectExpr is PROJECT(in, a, b, ...).
type ProjectExpr struct {
	In    ArrayExpr
	Attrs []string
}

func (*ProjectExpr) arrayNode() {}

// ReshapeExpr is RESHAPE(in, [X, Z, Y], [U = 1:8, V = 1:3]).
type ReshapeExpr struct {
	In      ArrayExpr
	Order   []string
	NewDims []NewDim
}

// NewDim is one target dimension "U = 1:8".
type NewDim struct {
	Name string
	High int64
}

func (*ReshapeExpr) arrayNode() {}

// RegridExpr is REGRID(in, [2, 2], AVG(v)).
type RegridExpr struct {
	In      ArrayExpr
	Strides []int64
	Agg     AggSpec
}

func (*RegridExpr) arrayNode() {}

// WindowExpr is WINDOW(in, [r1, r2], AVG(v)): a moving-window aggregate.
type WindowExpr struct {
	In     ArrayExpr
	Radius []int64
	Agg    AggSpec
}

func (*WindowExpr) arrayNode() {}

// CrossExpr is CROSS(a, b).
type CrossExpr struct{ L, R ArrayExpr }

func (*CrossExpr) arrayNode() {}

// ConcatExpr is CONCAT(a, b, dim).
type ConcatExpr struct {
	L, R ArrayExpr
	Dim  string
}

func (*ConcatExpr) arrayNode() {}

// AddDimExpr is ADDDIM(in, name).
type AddDimExpr struct {
	In   ArrayExpr
	Name string
}

func (*AddDimExpr) arrayNode() {}

// RemDimExpr is REMDIM(in, name).
type RemDimExpr struct {
	In   ArrayExpr
	Name string
}

func (*RemDimExpr) arrayNode() {}

// ExistsExpr is EXISTS(A, 7, 7): the paper's "Exists? [A, 7, 7]" cell-
// presence test, returned as a single-cell boolean array.
type ExistsExpr struct {
	Array string
	Coord []int64
}

func (*ExistsExpr) arrayNode() {}

// VersionExpr is VERSION(array, name): reads a named version.
type VersionExpr struct {
	Array string
	Name  string
}

func (*VersionExpr) arrayNode() {}

// --- value expressions -----------------------------------------------------

// ValExpr is a scalar expression over one cell.
type ValExpr interface{ valNode() }

// Ident references an attribute or dimension by name (resolution happens in
// the planner). Qualified identifiers ("B.val") keep their qualifier.
type Ident struct{ Name string }

func (*Ident) valNode() {}

// Lit is a literal.
type Lit struct{ V Scalar }

func (*Lit) valNode() {}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   string
	L, R ValExpr
}

func (*BinExpr) valNode() {}

// NotExpr negates.
type NotExpr struct{ E ValExpr }

func (*NotExpr) valNode() {}

// CallExpr invokes a UDF.
type CallExpr struct {
	Name string
	Args []ValExpr
}

func (*CallExpr) valNode() {}

// Error is a parse error with position info.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("parse error at offset %d: %s", e.Pos, e.Msg) }
