package parser

import (
	"fmt"
	"strings"
)

// Format renders a parse tree back to canonical AQL text. Round-tripping
// holds: Parse(Format(stmt)) produces an equivalent tree. Used for logging,
// the shell, and the parser's own round-trip tests.
func Format(s Stmt) string {
	switch n := s.(type) {
	case *DefineArray:
		var b strings.Builder
		b.WriteString("define ")
		if n.Updatable {
			b.WriteString("updatable ")
		}
		b.WriteString("array ")
		b.WriteString(n.Name)
		b.WriteString(" (")
		for i, a := range n.Attrs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Name)
			b.WriteString(" = ")
			if a.Uncertain {
				b.WriteString("uncertain ")
			}
			b.WriteString(a.Type)
		}
		b.WriteString(") [")
		b.WriteString(strings.Join(n.DimNames, ", "))
		b.WriteString("]")
		return b.String()
	case *DefineFunction:
		return fmt.Sprintf("define function %s %s returns %s '%s'",
			n.Name, formatParams(n.In), formatParams(n.Out), n.Handle)
	case *CreateArray:
		bounds := make([]string, len(n.Bounds))
		for i, v := range n.Bounds {
			if v < 0 {
				bounds[i] = "*"
			} else {
				bounds[i] = fmt.Sprintf("%d", v)
			}
		}
		return fmt.Sprintf("create array %s as %s [%s]", n.Name, n.TypeName, strings.Join(bounds, ", "))
	case *CreateFromFile:
		return fmt.Sprintf("create array %s from file '%s' using %s", n.Name, n.Path, n.Adaptor)
	case *CreateVersion:
		if n.Parent != "" {
			return fmt.Sprintf("create version %s from %s parent %s", n.Name, n.Array, n.Parent)
		}
		return fmt.Sprintf("create version %s from %s", n.Name, n.Array)
	case *Enhance:
		return fmt.Sprintf("enhance %s with %s", n.Array, n.Func)
	case *Shape:
		if len(n.Args) == 0 {
			return fmt.Sprintf("shape %s with %s", n.Array, n.Func)
		}
		return fmt.Sprintf("shape %s with %s(%s)", n.Array, n.Func, joinInts(n.Args))
	case *Insert:
		vals := make([]string, len(n.Values))
		for i, v := range n.Values {
			vals[i] = formatScalar(v)
		}
		return fmt.Sprintf("insert into %s [%s] values (%s)", n.Array, joinInts(n.Coord), strings.Join(vals, ", "))
	case *Delete:
		return fmt.Sprintf("delete from %s [%s]", n.Array, joinInts(n.Coord))
	case *Load:
		return fmt.Sprintf("load %s from '%s' using %s", n.Array, n.Path, n.Adaptor)
	case *Attach:
		return fmt.Sprintf("attach %s from '%s' using %s", n.Array, n.Path, n.Adaptor)
	case *Store:
		return fmt.Sprintf("store %s into %s", FormatArrayExpr(n.Expr), n.Target)
	case *Query:
		return FormatArrayExpr(n.Expr)
	case *Explain:
		if n.Analyze {
			return "explain analyze " + Format(n.Stmt)
		}
		return "explain " + Format(n.Stmt)
	case *ShowQueries:
		return "show queries"
	case *CancelQuery:
		return fmt.Sprintf("cancel query %d", n.ID)
	}
	return fmt.Sprintf("<unprintable %T>", s)
}

// FormatArrayExpr renders an array expression.
func FormatArrayExpr(e ArrayExpr) string {
	switch n := e.(type) {
	case *Ref:
		return n.Name
	case *ExistsExpr:
		return fmt.Sprintf("exists(%s, %s)", n.Array, joinInts(n.Coord))
	case *VersionExpr:
		return fmt.Sprintf("version(%s, %s)", n.Array, n.Name)
	case *SubsampleExpr:
		conds := make([]string, len(n.Pred))
		for i, c := range n.Pred {
			conds[i] = formatDimCond(c)
		}
		return fmt.Sprintf("subsample(%s, %s)", FormatArrayExpr(n.In), strings.Join(conds, " and "))
	case *FilterExpr:
		return fmt.Sprintf("filter(%s, %s)", FormatArrayExpr(n.In), FormatValExpr(n.Pred))
	case *AggregateExpr:
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = formatAggSpec(a)
		}
		return fmt.Sprintf("aggregate(%s, {%s}, %s)",
			FormatArrayExpr(n.In), strings.Join(n.GroupDims, ", "), strings.Join(aggs, ", "))
	case *SjoinExpr:
		pairs := make([]string, len(n.On))
		for i, p := range n.On {
			pairs[i] = fmt.Sprintf("l.%s = r.%s", p.Left, p.Right)
		}
		return fmt.Sprintf("sjoin(%s, %s, %s)", FormatArrayExpr(n.L), FormatArrayExpr(n.R), strings.Join(pairs, " and "))
	case *CjoinExpr:
		return fmt.Sprintf("cjoin(%s, %s, %s)", FormatArrayExpr(n.L), FormatArrayExpr(n.R), FormatValExpr(n.Pred))
	case *ApplyExpr:
		parts := make([]string, len(n.Names))
		for i := range n.Names {
			parts[i] = fmt.Sprintf("%s = %s", n.Names[i], FormatValExpr(n.Exprs[i]))
		}
		return fmt.Sprintf("apply(%s, %s)", FormatArrayExpr(n.In), strings.Join(parts, ", "))
	case *ProjectExpr:
		return fmt.Sprintf("project(%s, %s)", FormatArrayExpr(n.In), strings.Join(n.Attrs, ", "))
	case *ReshapeExpr:
		dims := make([]string, len(n.NewDims))
		for i, d := range n.NewDims {
			dims[i] = fmt.Sprintf("%s = 1:%d", d.Name, d.High)
		}
		return fmt.Sprintf("reshape(%s, [%s], [%s])",
			FormatArrayExpr(n.In), strings.Join(n.Order, ", "), strings.Join(dims, ", "))
	case *RegridExpr:
		return fmt.Sprintf("regrid(%s, [%s], %s)", FormatArrayExpr(n.In), joinInts(n.Strides), formatAggSpec(n.Agg))
	case *WindowExpr:
		return fmt.Sprintf("window(%s, [%s], %s)", FormatArrayExpr(n.In), joinInts(n.Radius), formatAggSpec(n.Agg))
	case *CrossExpr:
		return fmt.Sprintf("cross(%s, %s)", FormatArrayExpr(n.L), FormatArrayExpr(n.R))
	case *ConcatExpr:
		return fmt.Sprintf("concat(%s, %s, %s)", FormatArrayExpr(n.L), FormatArrayExpr(n.R), n.Dim)
	case *AddDimExpr:
		return fmt.Sprintf("adddim(%s, %s)", FormatArrayExpr(n.In), n.Name)
	case *RemDimExpr:
		return fmt.Sprintf("remdim(%s, %s)", FormatArrayExpr(n.In), n.Name)
	}
	return fmt.Sprintf("<unprintable %T>", e)
}

// FormatValExpr renders a value expression, fully parenthesized so
// round-tripping is precedence-safe.
func FormatValExpr(e ValExpr) string {
	switch n := e.(type) {
	case *Ident:
		return n.Name
	case *Lit:
		return formatScalar(n.V)
	case *BinExpr:
		return fmt.Sprintf("(%s %s %s)", FormatValExpr(n.L), n.Op, FormatValExpr(n.R))
	case *NotExpr:
		return fmt.Sprintf("not %s", FormatValExpr(n.E))
	case *CallExpr:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = FormatValExpr(a)
		}
		return fmt.Sprintf("%s(%s)", n.Name, strings.Join(args, ", "))
	}
	return fmt.Sprintf("<unprintable %T>", e)
}

func formatDimCond(c DimCond) string {
	switch c.Op {
	case "even", "odd":
		return fmt.Sprintf("%s(%s)", c.Op, c.Dim)
	default:
		return fmt.Sprintf("%s %s %d", c.Dim, c.Op, c.Value)
	}
}

func formatAggSpec(a AggSpec) string {
	s := fmt.Sprintf("%s(%s)", a.Func, a.Attr)
	if a.As != "" {
		s += " as " + a.As
	}
	return s
}

func formatScalar(v Scalar) string {
	switch {
	case v.IsParam:
		return fmt.Sprintf("$%d", v.ParamIdx)
	case v.IsNull:
		return "NULL"
	case v.IsString:
		return "'" + strings.ReplaceAll(v.Str, "'", `\'`) + "'"
	case v.Sigma != 0:
		return fmt.Sprintf("%g ± %g", v.Num, v.Sigma)
	case v.IsInt:
		return fmt.Sprintf("%d", v.Int)
	default:
		return fmt.Sprintf("%g", v.Num)
	}
}

func formatParams(ps []ParamDef) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Type + " " + p.Name
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func joinInts(vs []int64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ", ")
}
