package parser

import (
	"strings"
	"testing"
)

func TestMaxParam(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"filter(M, v > 3)", 0},
		{"filter(M, v > $1)", 1},
		{"filter(M, v > $2 and v < $1)", 2},
		{"insert into M [1, 2] values ($1, $3)", 3},
		{"store filter(M, v > $1) into F", 1},
		{"apply(M, t = v * $1 + $2)", 2},
	}
	for _, c := range cases {
		if got := MaxParam(mustParse(t, c.src)); got != c.want {
			t.Errorf("MaxParam(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestBindSubstitutes(t *testing.T) {
	stmt := mustParse(t, "filter(M, v > $1)")
	bound, err := Bind(stmt, []Scalar{{Num: 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	pred := bound.(*Query).Expr.(*FilterExpr).Pred.(*BinExpr)
	lit, ok := pred.R.(*Lit)
	if !ok || lit.V.IsParam || lit.V.Num != 2.5 {
		t.Fatalf("bound predicate RHS = %#v, want literal 2.5", pred.R)
	}
	// The original tree is untouched: rebinding with a different value
	// must not see the first bind.
	orig := stmt.(*Query).Expr.(*FilterExpr).Pred.(*BinExpr).R.(*Lit)
	if !orig.V.IsParam || orig.V.ParamIdx != 1 {
		t.Fatalf("original tree mutated by Bind: %#v", orig.V)
	}
	again, err := Bind(stmt, []Scalar{{Num: 9}})
	if err != nil {
		t.Fatal(err)
	}
	lit2 := again.(*Query).Expr.(*FilterExpr).Pred.(*BinExpr).R.(*Lit)
	if lit2.V.Num != 9 {
		t.Fatalf("second bind saw first bind's value: %v", lit2.V.Num)
	}
}

func TestBindInsertValues(t *testing.T) {
	stmt := mustParse(t, "insert into M [1, 2] values ($1, $2)")
	bound, err := Bind(stmt, []Scalar{
		{IsInt: true, Int: 7, Num: 7},
		{IsString: true, Str: "hot"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ins := bound.(*Insert)
	if ins.Values[0].Int != 7 || ins.Values[1].Str != "hot" {
		t.Fatalf("bound insert values = %+v", ins.Values)
	}
	// Parameter-free statements pass through unchanged (same pointer).
	plain := mustParse(t, "insert into M [1, 2] values (3)")
	same, err := Bind(plain, nil)
	if err != nil || same != plain {
		t.Fatalf("param-free bind rebuilt the tree: %v %v", same, err)
	}
}

func TestBindArityErrors(t *testing.T) {
	stmt := mustParse(t, "filter(M, v > $1 and v < $2)")
	if _, err := Bind(stmt, []Scalar{{Num: 1}}); err == nil {
		t.Error("underbinding succeeded, want arity error")
	}
	if _, err := Bind(stmt, []Scalar{{Num: 1}, {Num: 2}, {Num: 3}}); err == nil {
		t.Error("overbinding succeeded, want arity error")
	}
	if _, err := Bind(stmt, []Scalar{{Num: 1}, {IsParam: true, ParamIdx: 1}}); err == nil {
		t.Error("binding a placeholder as a value succeeded, want error")
	}
	if _, err := Bind(stmt, []Scalar{{Num: 1}, {Num: 2}}); err != nil {
		t.Errorf("exact-arity bind failed: %v", err)
	}
}

func TestParsePlaceholderErrors(t *testing.T) {
	mustFail(t, "filter(M, v > $0)")
	mustFail(t, "filter(M, v > $)")
	s, err := Parse("filter(M, v > $1)")
	if err != nil {
		t.Fatal(err)
	}
	// Placeholders format back as $N so prepared statements survive a
	// format/parse round trip.
	if f := Format(s); !strings.Contains(f, "$1") {
		t.Errorf("Format(%q) = %q, lost the placeholder", "filter(M, v > $1)", f)
	}
}
