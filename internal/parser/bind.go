package parser

import "fmt"

// Prepared-statement binding. A statement parsed with $N placeholders is
// parsed exactly once; Bind substitutes the parameter values into a rebuilt
// copy of the tree, so concurrent executions of one prepared statement never
// share mutable state. Only the spine that actually contains parameters is
// rebuilt — parameter-free subtrees are shared, which is safe because the
// executor treats parse trees as read-only.

// MaxParam returns the highest $N index anywhere in the statement (0 when
// the statement has no parameters).
func MaxParam(stmt Stmt) int {
	max := 0
	walkScalars(stmt, func(s Scalar) {
		if s.IsParam && s.ParamIdx > max {
			max = s.ParamIdx
		}
	})
	return max
}

// walkScalars visits every Scalar in the statement.
func walkScalars(stmt Stmt, fn func(Scalar)) {
	switch n := stmt.(type) {
	case *Insert:
		for _, v := range n.Values {
			fn(v)
		}
	case *Query:
		walkExprScalars(n.Expr, fn)
	case *Store:
		walkExprScalars(n.Expr, fn)
	case *Explain:
		walkScalars(n.Stmt, fn)
	}
}

func walkExprScalars(e ArrayExpr, fn func(Scalar)) {
	switch n := e.(type) {
	case *FilterExpr:
		walkValScalars(n.Pred, fn)
		walkExprScalars(n.In, fn)
	case *CjoinExpr:
		walkValScalars(n.Pred, fn)
		walkExprScalars(n.L, fn)
		walkExprScalars(n.R, fn)
	case *ApplyExpr:
		for _, ve := range n.Exprs {
			walkValScalars(ve, fn)
		}
		walkExprScalars(n.In, fn)
	case *SubsampleExpr:
		walkExprScalars(n.In, fn)
	case *AggregateExpr:
		walkExprScalars(n.In, fn)
	case *ProjectExpr:
		walkExprScalars(n.In, fn)
	case *ReshapeExpr:
		walkExprScalars(n.In, fn)
	case *RegridExpr:
		walkExprScalars(n.In, fn)
	case *WindowExpr:
		walkExprScalars(n.In, fn)
	case *AddDimExpr:
		walkExprScalars(n.In, fn)
	case *RemDimExpr:
		walkExprScalars(n.In, fn)
	case *SjoinExpr:
		walkExprScalars(n.L, fn)
		walkExprScalars(n.R, fn)
	case *CrossExpr:
		walkExprScalars(n.L, fn)
		walkExprScalars(n.R, fn)
	case *ConcatExpr:
		walkExprScalars(n.L, fn)
		walkExprScalars(n.R, fn)
	}
}

func walkValScalars(e ValExpr, fn func(Scalar)) {
	switch n := e.(type) {
	case *Lit:
		fn(n.V)
	case *BinExpr:
		walkValScalars(n.L, fn)
		walkValScalars(n.R, fn)
	case *NotExpr:
		walkValScalars(n.E, fn)
	case *CallExpr:
		for _, a := range n.Args {
			walkValScalars(a, fn)
		}
	}
}

// Bind substitutes params (params[0] is $1) into the statement, returning a
// rebuilt tree. The input tree is never mutated. Every placeholder must have
// a value and the statement must not demand more parameters than supplied;
// surplus values are an error too, so a miscounted bind fails loudly.
func Bind(stmt Stmt, params []Scalar) (Stmt, error) {
	need := MaxParam(stmt)
	if need != len(params) {
		return nil, fmt.Errorf("parser: statement wants %d parameters, bind got %d", need, len(params))
	}
	if need == 0 {
		return stmt, nil
	}
	for i, p := range params {
		if p.IsParam {
			return nil, fmt.Errorf("parser: bind value for $%d is itself a parameter", i+1)
		}
	}
	out, _, err := bindStmt(stmt, params)
	return out, err
}

func bindScalar(s Scalar, params []Scalar) (Scalar, bool, error) {
	if !s.IsParam {
		return s, false, nil
	}
	if s.ParamIdx < 1 || s.ParamIdx > len(params) {
		return Scalar{}, false, fmt.Errorf("parser: no value bound for $%d", s.ParamIdx)
	}
	return params[s.ParamIdx-1], true, nil
}

func bindStmt(stmt Stmt, params []Scalar) (Stmt, bool, error) {
	switch n := stmt.(type) {
	case *Insert:
		changed := false
		vals := make([]Scalar, len(n.Values))
		for i, v := range n.Values {
			bv, ch, err := bindScalar(v, params)
			if err != nil {
				return nil, false, err
			}
			vals[i] = bv
			changed = changed || ch
		}
		if !changed {
			return n, false, nil
		}
		cp := *n
		cp.Values = vals
		return &cp, true, nil
	case *Query:
		e, ch, err := bindArrayExpr(n.Expr, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &Query{Expr: e}, true, nil
	case *Store:
		e, ch, err := bindArrayExpr(n.Expr, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &Store{Expr: e, Target: n.Target}, true, nil
	case *Explain:
		s, ch, err := bindStmt(n.Stmt, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &Explain{Analyze: n.Analyze, Stmt: s}, true, nil
	}
	return stmt, false, nil
}

func bindArrayExpr(e ArrayExpr, params []Scalar) (ArrayExpr, bool, error) {
	switch n := e.(type) {
	case *FilterExpr:
		in, chIn, err := bindArrayExpr(n.In, params)
		if err != nil {
			return nil, false, err
		}
		pred, chP, err := bindValExpr(n.Pred, params)
		if err != nil {
			return nil, false, err
		}
		if !chIn && !chP {
			return n, false, nil
		}
		return &FilterExpr{In: in, Pred: pred}, true, nil
	case *CjoinExpr:
		l, chL, err := bindArrayExpr(n.L, params)
		if err != nil {
			return nil, false, err
		}
		r, chR, err := bindArrayExpr(n.R, params)
		if err != nil {
			return nil, false, err
		}
		pred, chP, err := bindValExpr(n.Pred, params)
		if err != nil {
			return nil, false, err
		}
		if !chL && !chR && !chP {
			return n, false, nil
		}
		return &CjoinExpr{L: l, R: r, Pred: pred}, true, nil
	case *ApplyExpr:
		in, chIn, err := bindArrayExpr(n.In, params)
		if err != nil {
			return nil, false, err
		}
		changed := chIn
		exprs := make([]ValExpr, len(n.Exprs))
		for i, ve := range n.Exprs {
			bv, ch, err := bindValExpr(ve, params)
			if err != nil {
				return nil, false, err
			}
			exprs[i] = bv
			changed = changed || ch
		}
		if !changed {
			return n, false, nil
		}
		return &ApplyExpr{In: in, Names: n.Names, Exprs: exprs}, true, nil
	case *SubsampleExpr:
		in, ch, err := bindArrayExpr(n.In, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &SubsampleExpr{In: in, Pred: n.Pred}, true, nil
	case *AggregateExpr:
		in, ch, err := bindArrayExpr(n.In, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &AggregateExpr{In: in, GroupDims: n.GroupDims, Aggs: n.Aggs}, true, nil
	case *ProjectExpr:
		in, ch, err := bindArrayExpr(n.In, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &ProjectExpr{In: in, Attrs: n.Attrs}, true, nil
	case *ReshapeExpr:
		in, ch, err := bindArrayExpr(n.In, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &ReshapeExpr{In: in, Order: n.Order, NewDims: n.NewDims}, true, nil
	case *RegridExpr:
		in, ch, err := bindArrayExpr(n.In, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &RegridExpr{In: in, Strides: n.Strides, Agg: n.Agg}, true, nil
	case *WindowExpr:
		in, ch, err := bindArrayExpr(n.In, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &WindowExpr{In: in, Radius: n.Radius, Agg: n.Agg}, true, nil
	case *AddDimExpr:
		in, ch, err := bindArrayExpr(n.In, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &AddDimExpr{In: in, Name: n.Name}, true, nil
	case *RemDimExpr:
		in, ch, err := bindArrayExpr(n.In, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &RemDimExpr{In: in, Name: n.Name}, true, nil
	case *SjoinExpr:
		l, chL, err := bindArrayExpr(n.L, params)
		if err != nil {
			return nil, false, err
		}
		r, chR, err := bindArrayExpr(n.R, params)
		if err != nil {
			return nil, false, err
		}
		if !chL && !chR {
			return n, false, nil
		}
		return &SjoinExpr{L: l, R: r, On: n.On}, true, nil
	case *CrossExpr:
		l, chL, err := bindArrayExpr(n.L, params)
		if err != nil {
			return nil, false, err
		}
		r, chR, err := bindArrayExpr(n.R, params)
		if err != nil {
			return nil, false, err
		}
		if !chL && !chR {
			return n, false, nil
		}
		return &CrossExpr{L: l, R: r}, true, nil
	case *ConcatExpr:
		l, chL, err := bindArrayExpr(n.L, params)
		if err != nil {
			return nil, false, err
		}
		r, chR, err := bindArrayExpr(n.R, params)
		if err != nil {
			return nil, false, err
		}
		if !chL && !chR {
			return n, false, nil
		}
		return &ConcatExpr{L: l, R: r, Dim: n.Dim}, true, nil
	}
	return e, false, nil
}

func bindValExpr(e ValExpr, params []Scalar) (ValExpr, bool, error) {
	switch n := e.(type) {
	case *Lit:
		v, ch, err := bindScalar(n.V, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &Lit{V: v}, true, nil
	case *BinExpr:
		l, chL, err := bindValExpr(n.L, params)
		if err != nil {
			return nil, false, err
		}
		r, chR, err := bindValExpr(n.R, params)
		if err != nil {
			return nil, false, err
		}
		if !chL && !chR {
			return n, false, nil
		}
		return &BinExpr{Op: n.Op, L: l, R: r}, true, nil
	case *NotExpr:
		in, ch, err := bindValExpr(n.E, params)
		if err != nil || !ch {
			return n, false, err
		}
		return &NotExpr{E: in}, true, nil
	case *CallExpr:
		changed := false
		args := make([]ValExpr, len(n.Args))
		for i, a := range n.Args {
			ba, ch, err := bindValExpr(a, params)
			if err != nil {
				return nil, false, err
			}
			args[i] = ba
			changed = changed || ch
		}
		if !changed {
			return n, false, nil
		}
		return &CallExpr{Name: n.Name, Args: args}, true, nil
	}
	return e, false, nil
}
