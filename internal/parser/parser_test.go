package parser

import (
	"math/rand"
	"testing"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func mustParse(t *testing.T, src string) Stmt {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func mustFail(t *testing.T, src string) {
	t.Helper()
	if _, err := Parse(src); err == nil {
		t.Errorf("Parse(%q) succeeded, want error", src)
	}
}

func TestDefineArrayPaperSyntax(t *testing.T) {
	// The paper's example: define Remote (s1 = float, s2 = float,
	// s3 = float) (I, J)
	s := mustParse(t, "define array Remote (s1 = float, s2 = float, s3 = float) (I, J)")
	d := s.(*DefineArray)
	if d.Name != "Remote" || d.Updatable {
		t.Errorf("define = %+v", d)
	}
	if len(d.Attrs) != 3 || d.Attrs[0].Name != "s1" || d.Attrs[2].Type != "float" {
		t.Errorf("attrs = %+v", d.Attrs)
	}
	if len(d.DimNames) != 2 || d.DimNames[0] != "I" || d.DimNames[1] != "J" {
		t.Errorf("dims = %v", d.DimNames)
	}
}

func TestDefineUpdatableAndUncertain(t *testing.T) {
	s := mustParse(t, "DEFINE UPDATABLE ARRAY Remote_2 (s1 = uncertain float) [I, J]")
	d := s.(*DefineArray)
	if !d.Updatable || !d.Attrs[0].Uncertain {
		t.Errorf("define = %+v", d)
	}
}

func TestCreateArray(t *testing.T) {
	s := mustParse(t, "create array My_remote as Remote [1024, 1024]")
	c := s.(*CreateArray)
	if c.Name != "My_remote" || c.TypeName != "Remote" || c.Bounds[0] != 1024 {
		t.Errorf("create = %+v", c)
	}
	// Unbounded: create My_remote_2 as Remote [*, *]
	s = mustParse(t, "create array My_remote_2 as Remote [*, *]")
	c = s.(*CreateArray)
	if c.Bounds[0] != -1 || c.Bounds[1] != -1 {
		t.Errorf("unbounded = %+v", c)
	}
}

func TestCreateArrayFromFile(t *testing.T) {
	s := mustParse(t, "CREATE ARRAY Sky FROM FILE '/data/sky.csv' USING csv")
	c := s.(*CreateFromFile)
	if c.Name != "Sky" || c.Path != "/data/sky.csv" || c.Adaptor != "csv" {
		t.Errorf("create from file = %+v", c)
	}
	// Adaptor defaults to sdf.
	s = mustParse(t, "create array Obs from file '/data/obs.sdf'")
	c = s.(*CreateFromFile)
	if c.Adaptor != "sdf" {
		t.Errorf("default adaptor = %q", c.Adaptor)
	}
}

func TestCreateVersion(t *testing.T) {
	s := mustParse(t, "create version v1 from base")
	v := s.(*CreateVersion)
	if v.Name != "v1" || v.Array != "base" || v.Parent != "" {
		t.Errorf("version = %+v", v)
	}
	s = mustParse(t, "create version v2 from base parent v1")
	v = s.(*CreateVersion)
	if v.Parent != "v1" {
		t.Errorf("version = %+v", v)
	}
}

func TestEnhanceShape(t *testing.T) {
	e := mustParse(t, "enhance My_remote with Scale10").(*Enhance)
	if e.Array != "My_remote" || e.Func != "Scale10" {
		t.Errorf("enhance = %+v", e)
	}
	sh := mustParse(t, "shape A with circle(5, 5, 3)").(*Shape)
	if sh.Func != "circle" || len(sh.Args) != 3 || sh.Args[2] != 3 {
		t.Errorf("shape = %+v", sh)
	}
}

func TestInsertDelete(t *testing.T) {
	i := mustParse(t, "insert into A [7, 8] values (3.5, 'x', NULL)").(*Insert)
	if i.Array != "A" || i.Coord[0] != 7 || i.Coord[1] != 8 {
		t.Errorf("insert = %+v", i)
	}
	if i.Values[0].Num != 3.5 || !i.Values[1].IsString || i.Values[1].Str != "x" || !i.Values[2].IsNull {
		t.Errorf("values = %+v", i.Values)
	}
	d := mustParse(t, "delete from A [1, 2]").(*Delete)
	if d.Array != "A" || d.Coord[1] != 2 {
		t.Errorf("delete = %+v", d)
	}
}

func TestInsertUncertainValue(t *testing.T) {
	i := mustParse(t, "insert into A [1] values (3.5 ± 0.2)").(*Insert)
	if i.Values[0].Num != 3.5 || i.Values[0].Sigma != 0.2 {
		t.Errorf("uncertain = %+v", i.Values[0])
	}
	// ASCII spelling "+-" also works.
	i = mustParse(t, "insert into A [1] values (3.5 +- 0.2)").(*Insert)
	if i.Values[0].Sigma != 0.2 {
		t.Errorf("uncertain ascii = %+v", i.Values[0])
	}
}

func TestLoadStmt(t *testing.T) {
	l := mustParse(t, "load A from '/data/a.csv' using csv").(*Load)
	if l.Array != "A" || l.Path != "/data/a.csv" || l.Adaptor != "csv" {
		t.Errorf("load = %+v", l)
	}
	l = mustParse(t, "load A from '/data/a.sdf'").(*Load)
	if l.Adaptor != "sdf" {
		t.Errorf("default adaptor = %q", l.Adaptor)
	}
}

func TestQuerySubsample(t *testing.T) {
	q := mustParse(t, "subsample(F, even(X))").(*Query)
	ss := q.Expr.(*SubsampleExpr)
	if ss.Pred[0].Op != "even" || ss.Pred[0].Dim != "X" {
		t.Errorf("pred = %+v", ss.Pred)
	}
	// The paper's legal example: "X = 3 and Y < 4".
	q = mustParse(t, "subsample(F, X = 3 and Y < 4)").(*Query)
	ss = q.Expr.(*SubsampleExpr)
	if len(ss.Pred) != 2 || ss.Pred[0].Value != 3 || ss.Pred[1].Op != "<" {
		t.Errorf("pred = %+v", ss.Pred)
	}
}

func TestSubsampleCrossDimIllegal(t *testing.T) {
	// "the predicate X = Y is not [legal]".
	mustFail(t, "subsample(F, X = Y)")
}

func TestQueryFilterAggregate(t *testing.T) {
	q := mustParse(t, "filter(A, val > 3 and val < 10)").(*Query)
	f := q.Expr.(*FilterExpr)
	b := f.Pred.(*BinExpr)
	if b.Op != "and" {
		t.Errorf("pred = %+v", b)
	}
	// The paper's Figure 2 operation.
	q = mustParse(t, "aggregate(H, {Y}, sum(*))").(*Query)
	ag := q.Expr.(*AggregateExpr)
	if len(ag.GroupDims) != 1 || ag.GroupDims[0] != "Y" || ag.Aggs[0].Func != "sum" || ag.Aggs[0].Attr != "*" {
		t.Errorf("aggregate = %+v", ag)
	}
	// Grand total with empty dims and alias.
	q = mustParse(t, "aggregate(A, {}, avg(v) as mean, count(v))").(*Query)
	ag = q.Expr.(*AggregateExpr)
	if len(ag.GroupDims) != 0 || ag.Aggs[0].As != "mean" || ag.Aggs[1].Func != "count" {
		t.Errorf("aggregate = %+v", ag)
	}
}

func TestQueryJoins(t *testing.T) {
	q := mustParse(t, "sjoin(A, B, A.x = B.x)").(*Query)
	sj := q.Expr.(*SjoinExpr)
	if sj.On[0].Left != "x" || sj.On[0].Right != "x" {
		t.Errorf("sjoin = %+v", sj.On)
	}
	q = mustParse(t, "sjoin(A, B, A.x = B.u and A.y = B.v)").(*Query)
	sj = q.Expr.(*SjoinExpr)
	if len(sj.On) != 2 || sj.On[1].Right != "v" {
		t.Errorf("sjoin = %+v", sj.On)
	}
	q = mustParse(t, "cjoin(A, B, A.val = B.val)").(*Query)
	cj := q.Expr.(*CjoinExpr)
	be := cj.Pred.(*BinExpr)
	if be.L.(*Ident).Name != "A.val" || be.R.(*Ident).Name != "B.val" {
		t.Errorf("cjoin pred = %+v", be)
	}
}

func TestQueryApplyProject(t *testing.T) {
	q := mustParse(t, "apply(A, d = val * 2, xc = x)").(*Query)
	ap := q.Expr.(*ApplyExpr)
	if len(ap.Names) != 2 || ap.Names[0] != "d" {
		t.Errorf("apply = %+v", ap)
	}
	q = mustParse(t, "project(A, s1, s3)").(*Query)
	pr := q.Expr.(*ProjectExpr)
	if len(pr.Attrs) != 2 || pr.Attrs[1] != "s3" {
		t.Errorf("project = %+v", pr)
	}
	mustFail(t, "apply(A)")
	mustFail(t, "project(A)")
}

func TestQueryReshapePaperExample(t *testing.T) {
	// Reshape(G, [X, Z, Y], [U = 1:8, V = 1:3])
	q := mustParse(t, "reshape(G, [X, Z, Y], [U = 1:8, V = 1:3])").(*Query)
	r := q.Expr.(*ReshapeExpr)
	if len(r.Order) != 3 || r.Order[1] != "Z" {
		t.Errorf("order = %v", r.Order)
	}
	if len(r.NewDims) != 2 || r.NewDims[0].High != 8 || r.NewDims[1].Name != "V" {
		t.Errorf("newdims = %+v", r.NewDims)
	}
	mustFail(t, "reshape(G, [X], [U = 2:8])") // dims must start at 1
}

func TestQueryRegridCrossConcatDims(t *testing.T) {
	q := mustParse(t, "regrid(A, [4, 4], avg(v))").(*Query)
	r := q.Expr.(*RegridExpr)
	if r.Strides[0] != 4 || r.Agg.Func != "avg" || r.Agg.Attr != "v" {
		t.Errorf("regrid = %+v", r)
	}
	q = mustParse(t, "cross(A, B)").(*Query)
	if _, ok := q.Expr.(*CrossExpr); !ok {
		t.Error("cross parse failed")
	}
	q = mustParse(t, "concat(A, B, x)").(*Query)
	if c := q.Expr.(*ConcatExpr); c.Dim != "x" {
		t.Errorf("concat = %+v", c)
	}
	q = mustParse(t, "adddim(A, layer)").(*Query)
	if a := q.Expr.(*AddDimExpr); a.Name != "layer" {
		t.Errorf("adddim = %+v", a)
	}
	q = mustParse(t, "remdim(A, layer)").(*Query)
	if a := q.Expr.(*RemDimExpr); a.Name != "layer" {
		t.Errorf("remdim = %+v", a)
	}
}

func TestNestedArrayExprs(t *testing.T) {
	q := mustParse(t, "aggregate(filter(subsample(A, even(x)), v > 0), {y}, sum(v))").(*Query)
	ag := q.Expr.(*AggregateExpr)
	f := ag.In.(*FilterExpr)
	ss := f.In.(*SubsampleExpr)
	if ss.In.(*Ref).Name != "A" {
		t.Error("nesting lost")
	}
}

func TestStoreAndScanAndVersion(t *testing.T) {
	s := mustParse(t, "store filter(A, v > 0) into B").(*Store)
	if s.Target != "B" {
		t.Errorf("store = %+v", s)
	}
	q := mustParse(t, "scan(A)").(*Query)
	if q.Expr.(*Ref).Name != "A" {
		t.Error("scan parse failed")
	}
	q = mustParse(t, "version(A, v1)").(*Query)
	v := q.Expr.(*VersionExpr)
	if v.Array != "A" || v.Name != "v1" {
		t.Errorf("version = %+v", v)
	}
}

func TestValExprPrecedence(t *testing.T) {
	q := mustParse(t, "filter(A, a + b * 2 > 10 or not c = 1)").(*Query)
	pred := q.Expr.(*FilterExpr).Pred.(*BinExpr)
	if pred.Op != "or" {
		t.Fatalf("top op = %q", pred.Op)
	}
	left := pred.L.(*BinExpr)
	if left.Op != ">" {
		t.Errorf("cmp op = %q", left.Op)
	}
	add := left.L.(*BinExpr)
	if add.Op != "+" {
		t.Errorf("add op = %q", add.Op)
	}
	if add.R.(*BinExpr).Op != "*" {
		t.Error("mul should bind tighter than +")
	}
	if _, ok := pred.R.(*NotExpr); !ok {
		t.Error("not parse failed")
	}
}

func TestUDFCallInExpr(t *testing.T) {
	q := mustParse(t, "apply(A, s = scale10(x, y))").(*Query)
	call := q.Expr.(*ApplyExpr).Exprs[0].(*CallExpr)
	if call.Name != "scale10" || len(call.Args) != 2 {
		t.Errorf("call = %+v", call)
	}
	// Zero-arg call.
	q = mustParse(t, "apply(A, r = rand())").(*Query)
	call = q.Expr.(*ApplyExpr).Exprs[0].(*CallExpr)
	if len(call.Args) != 0 {
		t.Errorf("call = %+v", call)
	}
}

func TestComments(t *testing.T) {
	s := mustParse(t, "-- the paper's example\ncreate array A as T [4] -- trailing")
	if s.(*CreateArray).Name != "A" {
		t.Error("comment handling broke parse")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"define array",
		"define array A",
		"define array A (x = float)",
		"create array A as",
		"create array A as T [",
		"insert into A [1] values",
		"load A from missing_quotes",
		"subsample(A)",
		"filter(A, )",
		"aggregate(A, {x})",
		"sjoin(A, B)",
		"store filter(A, x > 0)",
		"filter(A, x > 0) trailing",
		"insert into A [1] values ('unterminated)",
		"filter(A, x >)",
	}
	for _, c := range cases {
		mustFail(t, c)
	}
}

func TestLexerEdgeCases(t *testing.T) {
	// Negative numbers, floats, scientific notation.
	i := mustParse(t, "insert into A [1] values (-5, 2.5e3, 1e-2)").(*Insert)
	if !i.Values[0].IsInt || i.Values[0].Int != -5 {
		t.Errorf("neg = %+v", i.Values[0])
	}
	if i.Values[1].Num != 2500 {
		t.Errorf("sci = %+v", i.Values[1])
	}
	if i.Values[2].Num != 0.01 {
		t.Errorf("sci neg exp = %+v", i.Values[2])
	}
	// Escaped quote in string.
	s := mustParse(t, `insert into A [1] values ('it\'s')`).(*Insert)
	if s.Values[0].Str != "it's" {
		t.Errorf("escape = %q", s.Values[0].Str)
	}
}

func TestDefineFunctionPaperSyntax(t *testing.T) {
	// The paper's declaration, with 'go:...' standing in for file_handle.
	s := mustParse(t, "define function Scale10 (integer I, integer J) returns (integer K, integer L) 'go:scale10_impl'")
	f := s.(*DefineFunction)
	if f.Name != "Scale10" || f.Handle != "go:scale10_impl" {
		t.Errorf("define function = %+v", f)
	}
	if len(f.In) != 2 || f.In[0].Type != "integer" || f.In[1].Name != "J" {
		t.Errorf("in params = %+v", f.In)
	}
	if len(f.Out) != 2 || f.Out[1].Name != "L" {
		t.Errorf("out params = %+v", f.Out)
	}
	mustFail(t, "define function F (integer I) returns (integer K)") // no handle
	mustFail(t, "define function F (integer I) (integer K) 'go:x'")  // missing returns
	mustFail(t, "define function F () returns (integer K) 'go:x'")   // empty params
}

func TestQueryWindow(t *testing.T) {
	q := mustParse(t, "window(A, [1, 1], avg(v))").(*Query)
	w := q.Expr.(*WindowExpr)
	if len(w.Radius) != 2 || w.Radius[0] != 1 || w.Agg.Func != "avg" {
		t.Errorf("window = %+v", w)
	}
	mustFail(t, "window(A, [], avg(v))")
	mustFail(t, "window(A, [1])")
}

// TestParserNeverPanics throws random token soup at the parser; it must
// return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	vocab := []string{
		"define", "array", "create", "as", "insert", "into", "values",
		"subsample", "filter", "aggregate", "sjoin", "cjoin", "apply",
		"project", "reshape", "regrid", "window", "exists", "version",
		"store", "load", "attach", "from", "using", "with", "and", "or",
		"not", "even", "odd", "A", "B", "x", "y", "v", "float", "int64",
		"(", ")", "[", "]", "{", "}", ",", "=", "<", ">", "<=", ">=", "!=",
		"*", "+", "-", "/", "%", ".", ":", "±", "1", "42", "3.5", "'s'", "",
	}
	rng := newRand(7)
	for i := 0; i < 2000; i++ {
		n := rng.Intn(12) + 1
		src := ""
		for k := 0; k < n; k++ {
			src += vocab[rng.Intn(len(vocab))] + " "
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestFormatRoundTrip: Parse(Format(Parse(src))) must equal Format(Parse(src))
// for a corpus covering every statement and operator form.
func TestFormatRoundTrip(t *testing.T) {
	corpus := []string{
		"define array Remote (s1 = float, s2 = uncertain float) (I, J)",
		"define updatable array R2 (v = float) (x, y)",
		"define function Scale10 (integer I, integer J) returns (integer K, integer L) 'go:impl'",
		"create array A as Remote [1024, 1024]",
		"create array B as Remote [*, *]",
		"create array Sky from file '/data/sky.csv' using csv",
		"create version v1 from A",
		"create version v2 from A parent v1",
		"enhance A with Scale10",
		"shape A with circle(5, 5, 3)",
		"shape A with ring(5, 5, 4, 2)",
		"insert into A [7, 8] values (3.5, 'x', NULL, 1.5 ± 0.25, -4)",
		"delete from A [1, 2]",
		"load A from '/data/a.csv' using csv",
		"attach B from '/data/b.ncl' using ncl",
		"store filter(A, v > 3) into F",
		"subsample(A, even(x) and y < 4 and odd(z))",
		"filter(A, (v > 1 and v < 9) or not b = 0)",
		"aggregate(A, {x, y}, sum(v), avg(v) as mean, count(*))",
		"sjoin(A, B, l.x = r.u and l.y = r.v)",
		"cjoin(A, B, A.val = B.val)",
		"apply(A, d = (v * 2), e = f(x, 1))",
		"project(A, s1, s3)",
		"reshape(A, [X, Z, Y], [U = 1:8, V = 1:3])",
		"regrid(A, [4, 4], avg(v))",
		"window(A, [1, 2], max(v) as peak)",
		"cross(A, B)",
		"concat(A, B, x)",
		"adddim(A, layer)",
		"remdim(A, layer)",
		"version(A, v1)",
		"exists(A, 7, 7)",
		"aggregate(filter(subsample(A, x >= 2), v != 0), {y}, min(v))",
		"show queries",
		"cancel query 3",
		"sys.queries",
		"filter(sys.chunks, array = 'M')",
		"scan(sys.events)",
	}
	for _, src := range corpus {
		first, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		out1 := Format(first)
		second, err := Parse(out1)
		if err != nil {
			t.Fatalf("re-Parse(%q) from %q: %v", out1, src, err)
		}
		out2 := Format(second)
		if out1 != out2 {
			t.Errorf("round trip unstable:\n src: %s\n 1st: %s\n 2nd: %s", src, out1, out2)
		}
	}
}
