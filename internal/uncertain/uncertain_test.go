package uncertain

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAddSub(t *testing.T) {
	a, b := New(10, 3), New(20, 4)
	s := a.Add(b)
	if !close(s.Mean, 30) || !close(s.Sigma, 5) {
		t.Errorf("Add = %v, want 30±5", s)
	}
	d := b.Sub(a)
	if !close(d.Mean, 10) || !close(d.Sigma, 5) {
		t.Errorf("Sub = %v, want 10±5", d)
	}
}

func TestMulDiv(t *testing.T) {
	a, b := New(10, 1), New(20, 2) // both 10% relative error
	m := a.Mul(b)
	if !close(m.Mean, 200) || !close(m.Sigma, 200*math.Hypot(0.1, 0.1)) {
		t.Errorf("Mul = %v", m)
	}
	d := b.Div(a)
	if !close(d.Mean, 2) || !close(d.Sigma, 2*math.Hypot(0.1, 0.1)) {
		t.Errorf("Div = %v", d)
	}
}

func TestExactValuesPropagateExactly(t *testing.T) {
	a, b := Exact(6), Exact(7)
	if got := a.Mul(b); got.Sigma != 0 || got.Mean != 42 {
		t.Errorf("exact Mul = %v", got)
	}
	if got := a.Add(b); got.Sigma != 0 {
		t.Errorf("exact Add sigma = %v", got.Sigma)
	}
}

func TestDivByZero(t *testing.T) {
	got := New(1, 0.1).Div(Exact(0))
	if !math.IsInf(got.Sigma, 1) {
		t.Errorf("div by zero sigma = %v, want +Inf", got.Sigma)
	}
}

func TestZeroMeanMul(t *testing.T) {
	// Zero mean with nonzero sigma must not produce NaN.
	got := New(0, 1).Mul(New(5, 0.5))
	if math.IsNaN(got.Sigma) || math.IsNaN(got.Mean) {
		t.Errorf("zero-mean Mul produced NaN: %v", got)
	}
	if !close(got.Mean, 0) {
		t.Errorf("mean = %v", got.Mean)
	}
	if !close(got.Sigma, 5) { // sigma_a * mean_b dominates
		t.Errorf("sigma = %v, want 5", got.Sigma)
	}
}

func TestScaleNeg(t *testing.T) {
	v := New(3, 0.5)
	if got := v.Scale(-2); !close(got.Mean, -6) || !close(got.Sigma, 1) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); !close(got.Mean, -3) || !close(got.Sigma, 0.5) {
		t.Errorf("Neg = %v", got)
	}
}

func TestIntervalOverlap(t *testing.T) {
	a, b := New(0, 1), New(3, 1)
	if !a.Overlaps(b, 2) { // [−2,2] vs [1,5]
		t.Error("2σ intervals should overlap")
	}
	if a.Overlaps(b, 1) { // [−1,1] vs [2,4]
		t.Error("1σ intervals should not overlap")
	}
	if !a.DefinitelyLess(b, 1) {
		t.Error("a should be definitely less at 1σ")
	}
	if a.DefinitelyLess(b, 2) {
		t.Error("a is not definitely less at 2σ")
	}
}

func TestSumMean(t *testing.T) {
	vs := []Value{New(1, 3), New(2, 4)}
	s := Sum(vs)
	if !close(s.Mean, 3) || !close(s.Sigma, 5) {
		t.Errorf("Sum = %v", s)
	}
	m := Mean(vs)
	if !close(m.Mean, 1.5) || !close(m.Sigma, 2.5) {
		t.Errorf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil).Mean) {
		t.Error("Mean of empty should be NaN")
	}
}

// Properties of Gaussian propagation.
func TestPropagationProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// Addition is commutative in both mean and sigma.
	comm := func(a, b, sa, sb float64) bool {
		sa, sb = math.Abs(math.Mod(sa, 100)), math.Abs(math.Mod(sb, 100))
		a, b = math.Mod(a, 1e6), math.Mod(b, 1e6)
		x, y := New(a, sa), New(b, sb)
		p, q := x.Add(y), y.Add(x)
		return close(p.Mean, q.Mean) && close(p.Sigma, q.Sigma)
	}
	if err := quick.Check(comm, cfg); err != nil {
		t.Error(err)
	}
	// Sigma never decreases under addition of an independent error.
	mono := func(a, b, sa, sb float64) bool {
		sa, sb = math.Abs(math.Mod(sa, 100)), math.Abs(math.Mod(sb, 100))
		x, y := New(math.Mod(a, 1e6), sa), New(math.Mod(b, 1e6), sb)
		s := x.Add(y)
		return s.Sigma >= x.Sigma-1e-12 && s.Sigma >= y.Sigma-1e-12
	}
	if err := quick.Check(mono, cfg); err != nil {
		t.Error(err)
	}
	// A k-sigma interval always contains the mean.
	contains := func(a, sa, k float64) bool {
		sa = math.Abs(math.Mod(sa, 100))
		k = math.Abs(math.Mod(k, 10))
		v := New(math.Mod(a, 1e6), sa)
		lo, hi := v.Interval(k)
		return lo <= v.Mean && v.Mean <= hi
	}
	if err := quick.Check(contains, cfg); err != nil {
		t.Error(err)
	}
	// Overlaps is symmetric.
	sym := func(a, b, sa, sb float64) bool {
		sa, sb = math.Abs(math.Mod(sa, 100)), math.Abs(math.Mod(sb, 100))
		x, y := New(math.Mod(a, 1e6), sa), New(math.Mod(b, 1e6), sb)
		return x.Overlaps(y, 2) == y.Overlaps(x, 2)
	}
	if err := quick.Check(sym, cfg); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := New(3.5, 0.25).String(); got != "3.5±0.25" {
		t.Errorf("String = %q", got)
	}
	if got := Exact(2).String(); got != "2" {
		t.Errorf("String = %q", got)
	}
}
