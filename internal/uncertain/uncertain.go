// Package uncertain implements the paper's §2.13 uncertainty model: every
// data element may carry an "error bar" (one standard deviation of a normal
// distribution), and the executor performs interval arithmetic when
// combining uncertain elements. More sophisticated error models are left to
// the application, exactly as the paper prescribes.
//
// Propagation follows first-order (Gaussian) error propagation for
// independent errors:
//
//	(a±σa) + (b±σb) = (a+b) ± sqrt(σa² + σb²)
//	(a±σa) − (b±σb) = (a−b) ± sqrt(σa² + σb²)
//	(a±σa) × (b±σb) = ab ± |ab|·sqrt((σa/a)² + (σb/b)²)
//	(a±σa) ÷ (b±σb) = a/b ± |a/b|·sqrt((σa/a)² + (σb/b)²)
//	k·(a±σa)        = ka ± |k|σa
//
// which is the standard "error bars + interval arithmetic" the science users
// requested.
package uncertain

import (
	"fmt"
	"math"
)

// Value is an uncertain scalar: a mean and one standard deviation.
type Value struct {
	Mean  float64
	Sigma float64
}

// Exact wraps an exact number (σ = 0).
func Exact(v float64) Value { return Value{Mean: v} }

// New builds an uncertain value; sigma is stored as an absolute magnitude.
func New(mean, sigma float64) Value { return Value{Mean: mean, Sigma: math.Abs(sigma)} }

// Add returns v + o with propagated error.
func (v Value) Add(o Value) Value {
	return Value{Mean: v.Mean + o.Mean, Sigma: math.Hypot(v.Sigma, o.Sigma)}
}

// Sub returns v − o with propagated error.
func (v Value) Sub(o Value) Value {
	return Value{Mean: v.Mean - o.Mean, Sigma: math.Hypot(v.Sigma, o.Sigma)}
}

// Mul returns v × o with propagated relative error.
func (v Value) Mul(o Value) Value {
	m := v.Mean * o.Mean
	return Value{Mean: m, Sigma: mulSigma(v, o, m)}
}

// Div returns v ÷ o with propagated relative error. Division by an exact
// zero yields ±Inf mean with +Inf sigma.
func (v Value) Div(o Value) Value {
	m := v.Mean / o.Mean
	if o.Mean == 0 {
		return Value{Mean: m, Sigma: math.Inf(1)}
	}
	return Value{Mean: m, Sigma: mulSigma(v, o, m)}
}

func mulSigma(a, b Value, m float64) float64 {
	// Relative error combination; handle exact zeros without dividing by 0.
	var ra, rb float64
	if a.Mean != 0 {
		ra = a.Sigma / a.Mean
	} else if a.Sigma != 0 {
		// Degenerate: zero mean with nonzero sigma; fall back to absolute
		// contribution scaled by the partner's mean.
		return math.Hypot(a.Sigma*b.Mean, b.Sigma*a.Mean)
	}
	if b.Mean != 0 {
		rb = b.Sigma / b.Mean
	} else if b.Sigma != 0 {
		return math.Hypot(a.Sigma*b.Mean, b.Sigma*a.Mean)
	}
	return math.Abs(m) * math.Hypot(ra, rb)
}

// Scale returns k·v.
func (v Value) Scale(k float64) Value {
	return Value{Mean: k * v.Mean, Sigma: math.Abs(k) * v.Sigma}
}

// Neg returns −v.
func (v Value) Neg() Value { return Value{Mean: -v.Mean, Sigma: v.Sigma} }

// Interval returns the k-sigma interval [mean−kσ, mean+kσ].
func (v Value) Interval(k float64) (lo, hi float64) {
	return v.Mean - k*v.Sigma, v.Mean + k*v.Sigma
}

// Overlaps reports whether the k-sigma intervals of two uncertain values
// overlap — the predicate used for "uncertain" comparisons and spatial
// joins (the PanSTARRS location-error use case in §2.13).
func (v Value) Overlaps(o Value, k float64) bool {
	alo, ahi := v.Interval(k)
	blo, bhi := o.Interval(k)
	return ahi >= blo && bhi >= alo
}

// DefinitelyLess reports whether v < o with the k-sigma intervals disjoint:
// true only if even the pessimistic bound of v is below the optimistic
// bound of o.
func (v Value) DefinitelyLess(o Value, k float64) bool {
	_, ahi := v.Interval(k)
	blo, _ := o.Interval(k)
	return ahi < blo
}

// String renders "mean±sigma".
func (v Value) String() string {
	if v.Sigma == 0 {
		return fmt.Sprintf("%g", v.Mean)
	}
	return fmt.Sprintf("%g±%g", v.Mean, v.Sigma)
}

// Sum aggregates values with error propagation: the sigma of a sum of
// independent normals is the root-sum-square of the sigmas.
func Sum(vs []Value) Value {
	var mean, varsum float64
	for _, v := range vs {
		mean += v.Mean
		varsum += v.Sigma * v.Sigma
	}
	return Value{Mean: mean, Sigma: math.Sqrt(varsum)}
}

// Mean aggregates values: mean of means with sigma = rss(sigmas)/n.
func Mean(vs []Value) Value {
	if len(vs) == 0 {
		return Value{Mean: math.NaN()}
	}
	s := Sum(vs)
	n := float64(len(vs))
	return Value{Mean: s.Mean / n, Sigma: s.Sigma / n}
}
