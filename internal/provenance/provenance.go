// Package provenance implements §2.12: repeatability of data derivation.
//
// For processing inside SciDB, a log records every command that created an
// array. For externally loaded arrays, a metadata repository records the
// programs and run-time parameters that produced them. Two queries are
// supported:
//
//  1. Backward: for a data element D, find the collection of processing
//     steps that created it from input data — implemented by re-running
//     each producing command in a recording executor mode that reports
//     which input items contributed (the paper's minimal-storage scheme).
//  2. Forward: for a data element D, find all downstream elements whose
//     value is impacted by D — implemented by re-running each downstream
//     command with the dimension qualification "AND dimension-i = Vi"
//     added, iterating until there is no further activity.
//
// The minimal scheme stores no per-item lineage; a Trio-style cache can be
// enabled per command to materialize item-level lineage, trading space for
// trace time ("an interesting research issue is to find a better solution
// that can easily morph between the minimal storage solution and the Trio
// solution" — the cache flag is exactly that morph knob).
package provenance

import (
	"scidb/internal/array"
)

// Kind classifies a logged command by its coordinate-lineage pattern.
type Kind int

// Command kinds.
const (
	// KindLoad is an external load; its lineage terminates here and its
	// Params record the external program and run-time parameters.
	KindLoad Kind = iota
	// KindElementwise maps each output cell from the same-coordinate input
	// cell (Apply, Filter, calibration UDFs).
	KindElementwise
	// KindRegrid maps output cell c from the input block of Strides-sized
	// cells it aggregates.
	KindRegrid
	// KindAggregate maps output cell c (over the grouped dimensions) from
	// the whole input slab matching c on GroupDims.
	KindAggregate
	// KindSubsample maps output cell c from the original input coordinate
	// Sel[d][c[d]-1].
	KindSubsample
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindElementwise:
		return "elementwise"
	case KindRegrid:
		return "regrid"
	case KindAggregate:
		return "aggregate"
	case KindSubsample:
		return "subsample"
	}
	return "unknown"
}

// CellRef identifies one data element: an array name and a coordinate.
type CellRef struct {
	Array string
	Coord array.Coord
}

// String renders the reference.
func (r CellRef) String() string { return r.Array + r.Coord.String() }

func (r CellRef) key() string { return r.Array + "|" + r.Coord.Key() }

// Command is one logged derivation step.
type Command struct {
	ID     int64
	Time   int64
	Text   string // the command as run (for the log / repeatability)
	Kind   Kind
	Input  string // input array name ("" for loads)
	Output string // output array name
	// Params is the metadata-repository record: programs that were run
	// along with their run-time parameters.
	Params map[string]string

	// Kind-specific lineage parameters.
	Strides   []int64   // KindRegrid
	GroupDims []int     // KindAggregate: input dim indexes that survive
	InDims    int       // input dimensionality (KindAggregate, KindRegrid)
	Sel       [][]int64 // KindSubsample: selected original indices per dim
	InBounds  []int64   // input bounds (KindAggregate backward expansion)
}

// back maps an output coordinate to the contributing input coordinates —
// the "special executor mode that will record all items that contributed".
func (c *Command) back(out array.Coord) []array.Coord {
	switch c.Kind {
	case KindLoad:
		return nil
	case KindElementwise:
		return []array.Coord{out.Clone()}
	case KindRegrid:
		lo := make(array.Coord, len(out))
		hi := make(array.Coord, len(out))
		for d := range out {
			lo[d] = (out[d]-1)*c.Strides[d] + 1
			hi[d] = out[d] * c.Strides[d]
			if d < len(c.InBounds) && hi[d] > c.InBounds[d] {
				hi[d] = c.InBounds[d]
			}
		}
		var cells []array.Coord
		array.IterBox(array.Box{Lo: lo, Hi: hi}, func(cc array.Coord) bool {
			cells = append(cells, cc.Clone())
			return true
		})
		return cells
	case KindAggregate:
		// The output coordinate fixes the grouped dims; every combination
		// of the remaining dims contributed.
		lo := make(array.Coord, c.InDims)
		hi := make(array.Coord, c.InDims)
		for d := 0; d < c.InDims; d++ {
			lo[d], hi[d] = 1, c.InBounds[d]
		}
		for i, d := range c.GroupDims {
			lo[d], hi[d] = out[i], out[i]
		}
		var cells []array.Coord
		array.IterBox(array.Box{Lo: lo, Hi: hi}, func(cc array.Coord) bool {
			cells = append(cells, cc.Clone())
			return true
		})
		return cells
	case KindSubsample:
		in := make(array.Coord, len(out))
		for d := range out {
			idx := out[d] - 1
			if idx < 0 || idx >= int64(len(c.Sel[d])) {
				return nil
			}
			in[d] = c.Sel[d][idx]
		}
		return []array.Coord{in}
	}
	return nil
}

// forward maps an input coordinate to the affected output coordinates —
// the re-run "in a modified form" with the added dimension qualification.
func (c *Command) forward(in array.Coord) []array.Coord {
	switch c.Kind {
	case KindLoad:
		return nil
	case KindElementwise:
		return []array.Coord{in.Clone()}
	case KindRegrid:
		out := make(array.Coord, len(in))
		for d := range in {
			out[d] = (in[d]-1)/c.Strides[d] + 1
		}
		return []array.Coord{out}
	case KindAggregate:
		out := make(array.Coord, len(c.GroupDims))
		if len(c.GroupDims) == 0 {
			return []array.Coord{{1}}
		}
		for i, d := range c.GroupDims {
			out[i] = in[d]
		}
		return []array.Coord{out}
	case KindSubsample:
		out := make(array.Coord, len(in))
		for d := range in {
			found := int64(-1)
			for i, orig := range c.Sel[d] {
				if orig == in[d] {
					found = int64(i + 1)
					break
				}
			}
			if found < 0 {
				return nil // the cell was filtered out: no downstream impact
			}
			out[d] = found
		}
		return []array.Coord{out}
	}
	return nil
}
