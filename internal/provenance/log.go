package provenance

import (
	"fmt"
	"sync"
)

// Step is one edge of a derivation: the command plus the specific input
// elements that contributed to (backward) or were affected by (forward) the
// queried element.
type Step struct {
	Command *Command
	From    CellRef   // the element the step was traced from
	Refs    []CellRef // contributing inputs (backward) or affected outputs (forward)
}

// Log is the provenance log plus the metadata repository. "Recording the
// log and establishing a metadata repository is straightforward."
type Log struct {
	mu       sync.RWMutex
	commands []*Command
	// producer maps array name to the command that created it (the latest,
	// if recreated).
	producer map[string]*Command
	// consumers maps array name to commands reading it.
	consumers map[string][]*Command
	nextID    int64

	// cache holds Trio-style item-level lineage for commands that enabled
	// caching: command ID -> output-coordinate key -> contributing refs.
	cache      map[int64]map[string][]CellRef
	cacheBytes int64
}

// NewLog returns an empty provenance log.
func NewLog() *Log {
	return &Log{
		producer:  map[string]*Command{},
		consumers: map[string][]*Command{},
		cache:     map[int64]map[string][]CellRef{},
	}
}

// Append records a command. The command's ID is assigned.
func (l *Log) Append(c *Command) *Command {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	c.ID = l.nextID
	l.commands = append(l.commands, c)
	if c.Output != "" {
		l.producer[c.Output] = c
	}
	if c.Input != "" {
		l.consumers[c.Input] = append(l.consumers[c.Input], c)
	}
	return c
}

// Commands returns the full log in execution order.
func (l *Log) Commands() []*Command {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]*Command(nil), l.commands...)
}

// Producer returns the command that created the named array, if logged.
func (l *Log) Producer(arrayName string) (*Command, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	c, ok := l.producer[arrayName]
	return c, ok
}

// TraceBack answers requirement 1 of §2.12: "for a given data element D,
// find the collection of processing steps that created it from input data."
// It walks producers backward, re-running each command's recording mode,
// until it reaches loads. The returned steps are ordered from D toward the
// sources.
func (l *Log) TraceBack(ref CellRef) ([]Step, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var steps []Step
	frontier := []CellRef{ref}
	seen := map[string]bool{ref.key(): true}
	for guard := 0; len(frontier) > 0; guard++ {
		if guard > 1_000_000 {
			return nil, fmt.Errorf("provenance: backward trace did not terminate")
		}
		var next []CellRef
		for _, r := range frontier {
			cmd, ok := l.producer[r.Array]
			if !ok || cmd.Kind == KindLoad {
				continue
			}
			refs := l.backRefs(cmd, r)
			steps = append(steps, Step{Command: cmd, From: r, Refs: refs})
			for _, in := range refs {
				if !seen[in.key()] {
					seen[in.key()] = true
					next = append(next, in)
				}
			}
		}
		frontier = next
	}
	return steps, nil
}

// backRefs resolves one command's backward lineage for one output element,
// consulting the Trio-style cache first.
func (l *Log) backRefs(cmd *Command, r CellRef) []CellRef {
	if m, ok := l.cache[cmd.ID]; ok {
		if refs, ok := m[r.Coord.Key()]; ok {
			return refs
		}
		return nil
	}
	coords := cmd.back(r.Coord)
	refs := make([]CellRef, len(coords))
	for i, c := range coords {
		refs[i] = CellRef{Array: cmd.Input, Coord: c}
	}
	return refs
}

// TraceForward answers requirement 2 of §2.12: "for a given data element D,
// find all the downstream data elements whose value is impacted by the
// value of D." Each downstream command is re-run in the modified,
// qualified form; the process iterates "until there is no further
// activity." The result includes transitively affected elements.
func (l *Log) TraceForward(ref CellRef) ([]CellRef, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []CellRef
	frontier := []CellRef{ref}
	seen := map[string]bool{ref.key(): true}
	for guard := 0; len(frontier) > 0; guard++ {
		if guard > 1_000_000 {
			return nil, fmt.Errorf("provenance: forward trace did not terminate")
		}
		var next []CellRef
		for _, r := range frontier {
			for _, cmd := range l.consumers[r.Array] {
				for _, oc := range cmd.forward(r.Coord) {
					o := CellRef{Array: cmd.Output, Coord: oc}
					if !seen[o.key()] {
						seen[o.key()] = true
						out = append(out, o)
						next = append(next, o)
					}
				}
			}
		}
		frontier = next
	}
	return out, nil
}

// EnableCache materializes Trio-style item-level lineage for one command
// over the given output coordinates, storing every output's contributing
// input set. This is the space-for-time end of the morph: TraceBack over a
// cached command is a lookup instead of a re-run.
func (l *Log) EnableCache(cmdID int64, outputs []CellRef) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var cmd *Command
	for _, c := range l.commands {
		if c.ID == cmdID {
			cmd = c
			break
		}
	}
	if cmd == nil {
		return fmt.Errorf("provenance: unknown command %d", cmdID)
	}
	m := map[string][]CellRef{}
	for _, o := range outputs {
		coords := cmd.back(o.Coord)
		refs := make([]CellRef, len(coords))
		for i, c := range coords {
			refs[i] = CellRef{Array: cmd.Input, Coord: c}
			l.cacheBytes += int64(8*len(c)) + int64(len(cmd.Input))
		}
		m[o.Coord.Key()] = refs
		l.cacheBytes += int64(len(o.Coord.Key()))
	}
	l.cache[cmdID] = m
	return nil
}

// CacheBytes reports the space consumed by cached item-level lineage —
// the cost the paper calls "way too high" for full Trio recording.
func (l *Log) CacheBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.cacheBytes
}

// DropCache discards a command's cached lineage (morphing back toward the
// minimal-storage solution).
func (l *Log) DropCache(cmdID int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	m, ok := l.cache[cmdID]
	if !ok {
		return
	}
	for k, refs := range m {
		for _, r := range refs {
			l.cacheBytes -= int64(8*len(r.Coord)) + int64(len(r.Array))
		}
		l.cacheBytes -= int64(len(k))
	}
	delete(l.cache, cmdID)
}
