package provenance

import (
	"bytes"
	"testing"

	"scidb/internal/array"
)

// buildPipeline logs: raw --elementwise--> calibrated --regrid(2,2)-->
// coarse --aggregate(group dim 0)--> rowsum. Input raw is an 8x8 load.
func buildPipeline() *Log {
	l := NewLog()
	l.Append(&Command{
		Kind: KindLoad, Output: "raw", Text: "load raw from satellite pass 17",
		Params: map[string]string{"program": "ingest.py", "pass": "17"},
	})
	l.Append(&Command{
		Kind: KindElementwise, Input: "raw", Output: "calibrated",
		Text: "apply calibrate(raw)",
	})
	l.Append(&Command{
		Kind: KindRegrid, Input: "calibrated", Output: "coarse",
		Strides: []int64{2, 2}, InBounds: []int64{8, 8}, InDims: 2,
		Text: "regrid(calibrated, 2, 2, avg)",
	})
	l.Append(&Command{
		Kind: KindAggregate, Input: "coarse", Output: "rowsum",
		GroupDims: []int{0}, InDims: 2, InBounds: []int64{4, 4},
		Text: "aggregate(coarse, {x}, sum)",
	})
	return l
}

func TestBackwardTrace(t *testing.T) {
	l := buildPipeline()
	// rowsum[2] came from coarse[2, 1..4], each from a 2x2 calibrated
	// block, each from the same raw cell.
	steps, err := l.TraceBack(CellRef{Array: "rowsum", Coord: array.Coord{2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no steps")
	}
	// First step: the aggregate, contributing coarse[2,1..4].
	if steps[0].Command.Output != "rowsum" || len(steps[0].Refs) != 4 {
		t.Errorf("first step = %s with %d refs, want rowsum with 4", steps[0].Command.Output, len(steps[0].Refs))
	}
	// Collect all raw-level contributors: should be calibrated rows 3..4,
	// all 8 columns -> 16 cells, then the same 16 raw cells.
	var rawRefs, calRefs int
	for _, s := range steps {
		for _, r := range s.Refs {
			switch r.Array {
			case "raw":
				rawRefs++
			case "calibrated":
				calRefs++
			}
		}
	}
	if calRefs != 16 {
		t.Errorf("calibrated contributors = %d, want 16", calRefs)
	}
	if rawRefs != 16 {
		t.Errorf("raw contributors = %d, want 16", rawRefs)
	}
}

func TestBackwardTraceStopsAtLoad(t *testing.T) {
	l := buildPipeline()
	steps, err := l.TraceBack(CellRef{Array: "calibrated", Coord: array.Coord{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one step: calibrated <- raw; the load terminates the walk.
	if len(steps) != 1 {
		t.Fatalf("steps = %d, want 1", len(steps))
	}
	if steps[0].Refs[0].Array != "raw" || !steps[0].Refs[0].Coord.Equal(array.Coord{5, 5}) {
		t.Errorf("ref = %v", steps[0].Refs[0])
	}
	// The load's metadata-repository record is available.
	cmd, ok := l.Producer("raw")
	if !ok || cmd.Params["program"] != "ingest.py" {
		t.Error("metadata repository record missing")
	}
}

func TestForwardTrace(t *testing.T) {
	l := buildPipeline()
	// raw[3,3] -> calibrated[3,3] -> coarse[2,2] -> rowsum[2].
	refs, err := l.TraceForward(CellRef{Array: "raw", Coord: array.Coord{3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"calibrated[3, 3]": true,
		"coarse[2, 2]":     true,
		"rowsum[2]":        true,
	}
	if len(refs) != len(want) {
		t.Fatalf("forward refs = %v, want %d elements", refs, len(want))
	}
	for _, r := range refs {
		if !want[r.String()] {
			t.Errorf("unexpected downstream element %s", r)
		}
	}
}

func TestForwardTraceFromMiddle(t *testing.T) {
	l := buildPipeline()
	refs, err := l.TraceForward(CellRef{Array: "coarse", Coord: array.Coord{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0].String() != "rowsum[1]" {
		t.Errorf("refs = %v, want [rowsum[1]]", refs)
	}
}

func TestSubsampleLineage(t *testing.T) {
	l := NewLog()
	l.Append(&Command{Kind: KindLoad, Output: "A"})
	// Subsample keeping original rows 2 and 4 (even) of a 4x3 array,
	// all 3 columns.
	l.Append(&Command{
		Kind: KindSubsample, Input: "A", Output: "E",
		Sel: [][]int64{{2, 4}, {1, 2, 3}},
	})
	// Backward: E[2,3] came from A[4,3].
	steps, err := l.TraceBack(CellRef{Array: "E", Coord: array.Coord{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Refs[0].String() != "A[4, 3]" {
		t.Errorf("steps = %+v", steps)
	}
	// Forward: A[2,1] -> E[1,1]; A[3,1] was filtered out -> nothing.
	refs, _ := l.TraceForward(CellRef{Array: "A", Coord: array.Coord{2, 1}})
	if len(refs) != 1 || refs[0].String() != "E[1, 1]" {
		t.Errorf("forward = %v", refs)
	}
	refs, _ = l.TraceForward(CellRef{Array: "A", Coord: array.Coord{3, 1}})
	if len(refs) != 0 {
		t.Errorf("filtered-out element has downstream refs: %v", refs)
	}
}

func TestCachedLineageMatchesMinimal(t *testing.T) {
	l := buildPipeline()
	ref := CellRef{Array: "coarse", Coord: array.Coord{1, 1}}
	minimal, err := l.TraceBack(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Cache the regrid command's lineage for all 16 coarse outputs.
	cmd, _ := l.Producer("coarse")
	var outs []CellRef
	array.IterBox(array.NewBox(array.Coord{1, 1}, array.Coord{4, 4}), func(c array.Coord) bool {
		outs = append(outs, CellRef{Array: "coarse", Coord: c.Clone()})
		return true
	})
	if err := l.EnableCache(cmd.ID, outs); err != nil {
		t.Fatal(err)
	}
	if l.CacheBytes() == 0 {
		t.Error("cache consumed no space")
	}
	cached, err := l.TraceBack(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached) != len(minimal) {
		t.Fatalf("cached steps = %d, minimal = %d", len(cached), len(minimal))
	}
	// Same first-step refs.
	if len(cached[0].Refs) != len(minimal[0].Refs) {
		t.Errorf("cached refs = %d, minimal = %d", len(cached[0].Refs), len(minimal[0].Refs))
	}
	// Dropping the cache returns to minimal storage.
	l.DropCache(cmd.ID)
	if l.CacheBytes() != 0 {
		t.Errorf("cache bytes after drop = %d", l.CacheBytes())
	}
	if err := l.EnableCache(999, nil); err == nil {
		t.Error("caching unknown command accepted")
	}
}

func TestAggregateGrandTotalLineage(t *testing.T) {
	l := NewLog()
	l.Append(&Command{Kind: KindLoad, Output: "A"})
	l.Append(&Command{
		Kind: KindAggregate, Input: "A", Output: "total",
		GroupDims: nil, InDims: 1, InBounds: []int64{4},
	})
	refs, err := l.TraceForward(CellRef{Array: "A", Coord: array.Coord{3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0].String() != "total[1]" {
		t.Errorf("refs = %v", refs)
	}
	steps, err := l.TraceBack(CellRef{Array: "total", Coord: array.Coord{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || len(steps[0].Refs) != 4 {
		t.Errorf("steps = %+v", steps)
	}
}

func TestLogOrderAndProducers(t *testing.T) {
	l := buildPipeline()
	cmds := l.Commands()
	if len(cmds) != 4 {
		t.Fatalf("commands = %d", len(cmds))
	}
	for i := 1; i < len(cmds); i++ {
		if cmds[i].ID <= cmds[i-1].ID {
			t.Error("command ids not monotone")
		}
	}
	if _, ok := l.Producer("nonexistent"); ok {
		t.Error("producer for unknown array")
	}
	// Re-derivation produces a new command that becomes the producer.
	l.Append(&Command{Kind: KindElementwise, Input: "raw", Output: "calibrated", Text: "recalibrate v2"})
	cmd, _ := l.Producer("calibrated")
	if cmd.Text != "recalibrate v2" {
		t.Error("latest producer not returned")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindLoad: "load", KindElementwise: "elementwise", KindRegrid: "regrid",
		KindAggregate: "aggregate", KindSubsample: "subsample", Kind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := buildPipeline()
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Commands()) != len(l.Commands()) {
		t.Fatalf("commands = %d, want %d", len(back.Commands()), len(l.Commands()))
	}
	// Traces behave identically on the restored log.
	wantSteps, _ := l.TraceBack(CellRef{Array: "rowsum", Coord: array.Coord{2}})
	gotSteps, err := back.TraceBack(CellRef{Array: "rowsum", Coord: array.Coord{2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSteps) != len(wantSteps) {
		t.Fatalf("restored steps = %d, want %d", len(gotSteps), len(wantSteps))
	}
	wantFwd, _ := l.TraceForward(CellRef{Array: "raw", Coord: array.Coord{3, 3}})
	gotFwd, err := back.TraceForward(CellRef{Array: "raw", Coord: array.Coord{3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotFwd) != len(wantFwd) {
		t.Fatalf("restored forward = %v, want %v", gotFwd, wantFwd)
	}
	// Metadata repository records survive.
	cmd, ok := back.Producer("raw")
	if !ok || cmd.Params["program"] != "ingest.py" {
		t.Error("load params lost")
	}
	// Appending continues with fresh ids.
	c := back.Append(&Command{Kind: KindElementwise, Input: "rowsum", Output: "final"})
	if c.ID <= cmd.ID {
		t.Errorf("post-restore id %d not monotone", c.ID)
	}
}

func TestLoadLogCorrupt(t *testing.T) {
	if _, err := LoadLog(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadLog(bytes.NewReader([]byte(`{"kind":"frobnicate"}` + "\n"))); err == nil {
		t.Error("unknown kind accepted")
	}
	// Empty stream is a valid empty log.
	l, err := LoadLog(bytes.NewReader(nil))
	if err != nil || len(l.Commands()) != 0 {
		t.Errorf("empty load = %v, %v", l, err)
	}
}
