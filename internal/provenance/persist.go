package provenance

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// wireCommand is the JSON form of a logged command. Provenance must outlive
// processes — §2.6's multi-decade support expectation — so the log
// serializes to a line-oriented JSON stream that future readers can parse
// without this codebase.
type wireCommand struct {
	ID        int64             `json:"id"`
	Time      int64             `json:"time"`
	Text      string            `json:"text,omitempty"`
	Kind      string            `json:"kind"`
	Input     string            `json:"input,omitempty"`
	Output    string            `json:"output,omitempty"`
	Params    map[string]string `json:"params,omitempty"`
	Strides   []int64           `json:"strides,omitempty"`
	GroupDims []int             `json:"group_dims,omitempty"`
	InDims    int               `json:"in_dims,omitempty"`
	Sel       [][]int64         `json:"sel,omitempty"`
	InBounds  []int64           `json:"in_bounds,omitempty"`
}

var kindNames = map[Kind]string{
	KindLoad:        "load",
	KindElementwise: "elementwise",
	KindRegrid:      "regrid",
	KindAggregate:   "aggregate",
	KindSubsample:   "subsample",
}

var kindValues = func() map[string]Kind {
	m := map[string]Kind{}
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// Save writes the command log as JSON lines, in execution order. Cached
// (Trio-style) lineage is not persisted: it is a recomputable
// space-for-time optimization.
func (l *Log) Save(w io.Writer) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, c := range l.commands {
		wc := wireCommand{
			ID: c.ID, Time: c.Time, Text: c.Text, Kind: kindNames[c.Kind],
			Input: c.Input, Output: c.Output, Params: c.Params,
			Strides: c.Strides, GroupDims: c.GroupDims, InDims: c.InDims,
			Sel: c.Sel, InBounds: c.InBounds,
		}
		if err := enc.Encode(&wc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadLog reconstructs a log from a Save stream. Command ids are preserved.
func LoadLog(r io.Reader) (*Log, error) {
	l := NewLog()
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var wc wireCommand
		if err := dec.Decode(&wc); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("provenance: corrupt log: %w", err)
		}
		kind, ok := kindValues[wc.Kind]
		if !ok {
			return nil, fmt.Errorf("provenance: unknown command kind %q", wc.Kind)
		}
		c := &Command{
			Time: wc.Time, Text: wc.Text, Kind: kind,
			Input: wc.Input, Output: wc.Output, Params: wc.Params,
			Strides: wc.Strides, GroupDims: wc.GroupDims, InDims: wc.InDims,
			Sel: wc.Sel, InBounds: wc.InBounds,
		}
		l.Append(c)
		// Preserve the original id (Append assigned a sequential one; for
		// a well-formed stream they coincide, but be defensive).
		c.ID = wc.ID
		if wc.ID > l.nextID {
			l.nextID = wc.ID
		}
		l.mu.Lock()
		if c.Output != "" {
			l.producer[c.Output] = c
		}
		l.mu.Unlock()
	}
	return l, nil
}
