// Package exec is the engine's parallel execution layer: a process-wide
// bounded worker pool plus a chunk-parallel map driver that operators and
// the cluster coordinator submit per-chunk tasks to. The paper's premise is
// that array operators are "embarrassingly parallel" over a regular chunked
// layout (§2.4, §2.10); this package supplies the worker scheduling so the
// operator rewrites in internal/ops only have to express per-chunk work.
//
// The pool never blocks a submitter: Map runs tasks on the calling
// goroutine and opportunistically recruits up to Parallelism-1 extra
// workers from a shared semaphore. Submission is therefore deadlock-free
// under nesting (a cluster worker running a parallel operator inside a
// fan-out goroutine makes progress even with every slot taken — it just
// runs its chunks itself and the pool counts the saturation).
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"scidb/internal/obs"
)

// Pool is a bounded worker pool. The zero Parallelism means
// runtime.NumCPU(). Parallelism 1 executes every Map serially on the
// caller, byte-for-byte equivalent to the pre-parallel engine.
type Pool struct {
	par int
	// extra grants slots for workers beyond the calling goroutine; nil when
	// par <= 1.
	extra chan struct{}

	tasksRun   atomic.Int64
	chunksDone atomic.Int64
	parRuns    atomic.Int64
	serialRuns atomic.Int64
	saturated  atomic.Int64
}

// Stats is a snapshot of pool counters: scheduling observability alongside
// the bufcache hit/miss counters.
type Stats struct {
	// Parallelism is the pool's worker bound.
	Parallelism int
	// TasksRun counts task-function invocations (one per chunk for the
	// chunk drivers).
	TasksRun int64
	// ChunksProcessed counts chunks handled by chunk-parallel operators.
	ChunksProcessed int64
	// ParallelRuns and SerialRuns count Map calls by execution mode.
	ParallelRuns int64
	SerialRuns   int64
	// Saturation counts worker slots that were wanted but unavailable —
	// a persistent nonzero rate means the pool is the bottleneck.
	Saturation int64
}

// New creates a pool. parallelism <= 0 selects runtime.NumCPU().
func New(parallelism int) *Pool {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	p := &Pool{par: parallelism}
	if parallelism > 1 {
		p.extra = make(chan struct{}, parallelism-1)
	}
	return p
}

// Parallelism returns the pool's worker bound.
func (p *Pool) Parallelism() int { return p.par }

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Parallelism:     p.par,
		TasksRun:        p.tasksRun.Load(),
		ChunksProcessed: p.chunksDone.Load(),
		ParallelRuns:    p.parRuns.Load(),
		SerialRuns:      p.serialRuns.Load(),
		Saturation:      p.saturated.Load(),
	}
}

// NoteChunks records n chunks processed by a chunk driver.
func (p *Pool) NoteChunks(n int64) { p.chunksDone.Add(n) }

// Map runs fn(0..n-1) and returns the first error. With parallelism 1 (or a
// single task) it runs serially in index order on the caller, preserving the
// engine's original semantics exactly. Otherwise tasks are pulled from a
// shared index counter by the caller plus up to Parallelism-1 recruited
// workers; the first failure (lowest index wins, for determinism) or a
// cancelled ctx stops the remaining tasks from starting.
func (p *Pool) Map(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	// span is nil unless this query is traced; every method on a nil span
	// is a no-op, so the untraced cost is this one context lookup.
	span := obs.SpanFromContext(ctx)
	if p.par <= 1 || n == 1 {
		p.serialRuns.Add(1)
		span.Add("pool_tasks", int64(n))
		span.Add("pool_serial_runs", 1)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			p.tasksRun.Add(1)
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	p.parRuns.Add(1)
	span.Add("pool_tasks", int64(n))
	span.Add("pool_parallel_runs", 1)

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = int64(n)
		first  error
	)
	record := func(i int64, err error) {
		mu.Lock()
		if err != nil && i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	run := func() {
		for {
			if failed.Load() || ctx.Err() != nil {
				return
			}
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			p.tasksRun.Add(1)
			if err := fn(int(i)); err != nil {
				record(i, err)
				return
			}
		}
	}

	want := p.par
	if n < want {
		want = n
	}
	var wg sync.WaitGroup
	for w := 1; w < want; w++ {
		select {
		case p.extra <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-p.extra; wg.Done() }()
				run()
			}()
		default:
			// Every slot is busy serving other Map calls; the caller still
			// guarantees progress. Saturation is the never-blocking pool's
			// analogue of queue wait: work that wanted a worker and ran on
			// the caller instead.
			p.saturated.Add(1)
			span.Add("pool_saturated", 1)
		}
	}
	run()
	wg.Wait()
	if first != nil {
		return first
	}
	if failed.Load() {
		// Failure without a recorded error means ctx fired inside a task.
		return ctx.Err()
	}
	return ctx.Err()
}

// def is the process-wide pool operators use by default; replaced by
// SetParallelism (cmd flags, core.Database.SetParallelism).
var def atomic.Pointer[Pool]

func init() {
	def.Store(New(0))
	// The process-wide pool exports through the unified registry. The
	// collector re-reads Default() per scrape, so SetParallelism swaps
	// (which reset the counters) are reflected immediately.
	obs.Default().RegisterFunc("scidb_exec", "Process-wide worker pool scheduling counters.", obs.KindGauge,
		func(emit func(obs.Sample)) {
			s := Default().Stats()
			emit(obs.Sample{Name: "scidb_exec_parallelism", Value: float64(s.Parallelism)})
			emit(obs.Sample{Name: "scidb_exec_tasks_total", Value: float64(s.TasksRun)})
			emit(obs.Sample{Name: "scidb_exec_chunks_total", Value: float64(s.ChunksProcessed)})
			emit(obs.Sample{Name: "scidb_exec_parallel_runs_total", Value: float64(s.ParallelRuns)})
			emit(obs.Sample{Name: "scidb_exec_serial_runs_total", Value: float64(s.SerialRuns)})
			emit(obs.Sample{Name: "scidb_exec_saturation_total", Value: float64(s.Saturation)})
		})
}

// Default returns the process-wide pool.
func Default() *Pool { return def.Load() }

// Parallelism returns the process-wide pool's worker bound.
func Parallelism() int { return Default().Parallelism() }

// SetParallelism replaces the process-wide pool with one of the given
// bound (<= 0 restores runtime.NumCPU()). In-flight Maps keep running on
// the pool they started with; counters restart at zero.
func SetParallelism(n int) { def.Store(New(n)) }
