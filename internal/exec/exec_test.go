package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapRunsEveryTask(t *testing.T) {
	for _, par := range []int{1, 2, 4, 8} {
		p := New(par)
		var hits [100]atomic.Int32
		if err := p.Map(context.Background(), len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("par=%d: task %d ran %d times", par, i, got)
			}
		}
		if got := p.Stats().TasksRun; got != 100 {
			t.Fatalf("par=%d: TasksRun = %d, want 100", par, got)
		}
	}
}

func TestMapSerialOrderAndFirstError(t *testing.T) {
	p := New(1)
	var order []int
	wantErr := errors.New("boom")
	err := p.Map(context.Background(), 10, func(i int) error {
		order = append(order, i)
		if i == 3 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if len(order) != 4 || order[3] != 3 {
		t.Fatalf("serial map ran %v, want [0 1 2 3]", order)
	}
}

func TestMapParallelReturnsLowestIndexError(t *testing.T) {
	p := New(4)
	err := p.Map(context.Background(), 64, func(i int) error {
		if i%7 == 5 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 5 failed" {
		t.Fatalf("err = %v, want task 5 failed", err)
	}
}

func TestMapErrorCancelsRemainingTasks(t *testing.T) {
	p := New(4)
	var ran atomic.Int64
	_ = p.Map(context.Background(), 10000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("stop")
		}
		return nil
	})
	if n := ran.Load(); n == 10000 {
		t.Fatalf("expected cancellation to skip tasks, all %d ran", n)
	}
}

func TestMapContextCancellation(t *testing.T) {
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := p.Map(ctx, 100000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNestedMapDoesNotDeadlock(t *testing.T) {
	p := New(2)
	done := make(chan error, 1)
	go func() {
		done <- p.Map(context.Background(), 4, func(i int) error {
			return p.Map(context.Background(), 4, func(j int) error { return nil })
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nested Map deadlocked")
	}
}

func TestConcurrentMapsShareSlots(t *testing.T) {
	p := New(4)
	var wg = make(chan struct{}, 8)
	for g := 0; g < 8; g++ {
		go func() {
			_ = p.Map(context.Background(), 32, func(i int) error { return nil })
			wg <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-wg
	}
	if got := p.Stats().TasksRun; got != 8*32 {
		t.Fatalf("TasksRun = %d, want %d", got, 8*32)
	}
}

func TestSetParallelism(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d, want 3", Parallelism())
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("Parallelism() = %d, want >= 1", Parallelism())
	}
}
