// Package click implements §2.14, the eBay use case: a click stream
// modelled as a one-dimensional time-series array with embedded arrays
// representing the search results at each step, plus the analytics UDFs the
// paper sketches — which items were clicked through, and (more importantly)
// the user-ignored content: how often an item was surfaced but never
// clicked. A weblog-style relational representation (tablesim) provides the
// baseline for the CLICK experiment.
package click

import (
	"fmt"
	"math/rand"

	"scidb/internal/array"
	"scidb/internal/tablesim"
)

// Config shapes the synthetic click stream.
type Config struct {
	Events     int64 // search events in the stream
	Users      int64
	Items      int64   // distinct item ids
	ResultsPer int64   // results surfaced per search
	ClickBias  float64 // probability mass on the top-ranked results
	Seed       int64
	QueryPool  int64 // distinct query strings
}

// DefaultConfig returns a small, fast configuration.
func DefaultConfig() Config {
	return Config{Events: 200, Users: 20, Items: 100, ResultsPer: 10, ClickBias: 0.5, Seed: 1, QueryPool: 12}
}

// ResultSchema is the nested per-search result list: rank -> (item,
// clicked, dwell).
func ResultSchema() *array.Schema {
	return &array.Schema{
		Name: "results",
		Dims: []array.Dimension{{Name: "rank", High: array.Unbounded}},
		Attrs: []array.Attribute{
			{Name: "item", Type: array.TInt64},
			{Name: "clicked", Type: array.TBool},
			{Name: "dwell", Type: array.TInt64},
		},
	}
}

// StreamSchema is the outer 1-D time series with nested result arrays —
// "it can be effectively modelled as a one-dimensional array (i.e. a time
// series) with embedded arrays to represent the search results at each
// step."
func StreamSchema() *array.Schema {
	return &array.Schema{
		Name: "clickstream",
		Dims: []array.Dimension{{Name: "t", High: array.Unbounded, ChunkLen: 256}},
		Attrs: []array.Attribute{
			{Name: "user", Type: array.TInt64},
			{Name: "query", Type: array.TString},
			{Name: "results", Type: array.TArray, Nested: ResultSchema()},
		},
	}
}

// Generate builds the click stream. Each event surfaces ResultsPer items;
// clicks skew toward popular items but, crucially, often skip the top
// ranks (the paper's "their search strategy for pre-war Gibson banjos is
// flawed, since the top 6 items were not of interest").
func Generate(cfg Config) (*array.Array, error) {
	if cfg.Events < 1 || cfg.ResultsPer < 1 || cfg.Items < cfg.ResultsPer {
		return nil, fmt.Errorf("click: bad config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	stream, err := array.New(StreamSchema())
	if err != nil {
		return nil, err
	}
	for t := int64(1); t <= cfg.Events; t++ {
		res, err := array.New(ResultSchema())
		if err != nil {
			return nil, err
		}
		// Sample distinct items for this result page.
		perm := rng.Perm(int(cfg.Items))
		clickedRank := int64(-1)
		if rng.Float64() < 0.8 { // some searches get no click at all
			// Higher ranks are more likely but far from certain.
			if rng.Float64() < cfg.ClickBias {
				clickedRank = 1 + rng.Int63n(3)
			} else {
				clickedRank = 1 + rng.Int63n(cfg.ResultsPer)
			}
		}
		for r := int64(1); r <= cfg.ResultsPer; r++ {
			item := int64(perm[r-1]) + 1
			clicked := r == clickedRank
			dwell := int64(0)
			if clicked {
				dwell = 5 + rng.Int63n(300)
			}
			if err := res.Set(array.Coord{r}, array.Cell{
				array.Int64(item),
				array.Bool64(clicked),
				array.Int64(dwell),
			}); err != nil {
				return nil, err
			}
		}
		user := 1 + rng.Int63n(cfg.Users)
		query := fmt.Sprintf("q%02d", 1+rng.Int63n(cfg.QueryPool))
		if err := stream.Set(array.Coord{t}, array.Cell{
			array.Int64(user),
			array.String64(query),
			array.Nested(res),
		}); err != nil {
			return nil, err
		}
	}
	return stream, nil
}

// ItemStats is the surfaced-vs-clicked analysis for one item.
type ItemStats struct {
	Item     int64
	Surfaced int64
	Clicked  int64
}

// SurfacedNeverClicked computes, per item, how often it was surfaced and
// how often clicked — "how often did a particular item get surfaced but
// was never clicked on?" — by walking the nested result arrays directly.
func SurfacedNeverClicked(stream *array.Array) (map[int64]*ItemStats, error) {
	ri := stream.Schema.AttrIndex("results")
	if ri < 0 {
		return nil, fmt.Errorf("click: stream has no results attribute")
	}
	out := map[int64]*ItemStats{}
	stream.Iter(func(_ array.Coord, cell array.Cell) bool {
		res := cell[ri].Arr
		if res == nil {
			return true
		}
		res.Iter(func(_ array.Coord, rc array.Cell) bool {
			item := rc[0].Int
			st, ok := out[item]
			if !ok {
				st = &ItemStats{Item: item}
				out[item] = st
			}
			st.Surfaced++
			if rc[1].Bool {
				st.Clicked++
			}
			return true
		})
		return true
	})
	return out, nil
}

// SearchQuality measures ranking health: the fraction of clicked searches
// whose click landed beyond rank k (the paper's "top 6 items were not of
// interest" signal).
func SearchQuality(stream *array.Array, k int64) (clickedBeyondK float64, clickedSearches int64, err error) {
	ri := stream.Schema.AttrIndex("results")
	if ri < 0 {
		return 0, 0, fmt.Errorf("click: stream has no results attribute")
	}
	var beyond int64
	stream.Iter(func(_ array.Coord, cell array.Cell) bool {
		res := cell[ri].Arr
		if res == nil {
			return true
		}
		clickRank := int64(-1)
		res.Iter(func(c array.Coord, rc array.Cell) bool {
			if rc[1].Bool {
				clickRank = c[0]
				return false
			}
			return true
		})
		if clickRank > 0 {
			clickedSearches++
			if clickRank > k {
				beyond++
			}
		}
		return true
	})
	if clickedSearches == 0 {
		return 0, 0, nil
	}
	return float64(beyond) / float64(clickedSearches), clickedSearches, nil
}

// SessionPaths reconstructs, per user, the sequence of clicked items in
// time order — the "items 7 and then 9 were touched" analysis.
func SessionPaths(stream *array.Array) (map[int64][]int64, error) {
	ui := stream.Schema.AttrIndex("user")
	ri := stream.Schema.AttrIndex("results")
	if ui < 0 || ri < 0 {
		return nil, fmt.Errorf("click: stream missing user or results")
	}
	out := map[int64][]int64{}
	stream.Iter(func(_ array.Coord, cell array.Cell) bool {
		res := cell[ri].Arr
		if res == nil {
			return true
		}
		user := cell[ui].Int
		res.Iter(func(_ array.Coord, rc array.Cell) bool {
			if rc[1].Bool {
				out[user] = append(out[user], rc[0].Int)
			}
			return true
		})
		return true
	})
	return out, nil
}

// ToWeblogTables flattens the stream into the traditional relational
// weblog representation the paper says "cannot provide the required
// insight" efficiently: a searches table plus an impressions table (one row
// per surfaced item).
func ToWeblogTables(stream *array.Array) (searches, impressions *tablesim.Table, err error) {
	searches, err = tablesim.NewTable("searches", []tablesim.Column{
		{Name: "t", Type: array.TInt64},
		{Name: "user", Type: array.TInt64},
		{Name: "query", Type: array.TString},
	})
	if err != nil {
		return nil, nil, err
	}
	impressions, err = tablesim.NewTable("impressions", []tablesim.Column{
		{Name: "t", Type: array.TInt64},
		{Name: "rank", Type: array.TInt64},
		{Name: "item", Type: array.TInt64},
		{Name: "clicked", Type: array.TBool},
		{Name: "dwell", Type: array.TInt64},
	})
	if err != nil {
		return nil, nil, err
	}
	ui := stream.Schema.AttrIndex("user")
	qi := stream.Schema.AttrIndex("query")
	ri := stream.Schema.AttrIndex("results")
	var insErr error
	stream.Iter(func(c array.Coord, cell array.Cell) bool {
		if _, err := searches.Insert(tablesim.Row{array.Int64(c[0]), cell[ui], cell[qi]}); err != nil {
			insErr = err
			return false
		}
		res := cell[ri].Arr
		if res == nil {
			return true
		}
		res.Iter(func(rc array.Coord, rcell array.Cell) bool {
			if _, err := impressions.Insert(tablesim.Row{
				array.Int64(c[0]), array.Int64(rc[0]), rcell[0], rcell[1], rcell[2],
			}); err != nil {
				insErr = err
				return false
			}
			return true
		})
		return insErr == nil
	})
	if insErr != nil {
		return nil, nil, insErr
	}
	return searches, impressions, nil
}

// SurfacedNeverClickedSQL answers the same question as
// SurfacedNeverClicked through the relational baseline: GROUP BY over the
// impressions table.
func SurfacedNeverClickedSQL(impressions *tablesim.Table) (map[int64]*ItemStats, error) {
	surf, err := impressions.GroupBy([]string{"item"}, "count", "item")
	if err != nil {
		return nil, err
	}
	out := map[int64]*ItemStats{}
	surf.Scan(func(_ int64, r tablesim.Row) bool {
		out[r[0].Int] = &ItemStats{Item: r[0].Int, Surfaced: r[1].Int}
		return true
	})
	clickedOnly, err := impressions.Select(func(r tablesim.Row) bool {
		return !r[3].Null && r[3].Bool
	}, nil)
	if err != nil {
		return nil, err
	}
	clicks, err := clickedOnly.GroupBy([]string{"item"}, "count", "item")
	if err != nil {
		return nil, err
	}
	clicks.Scan(func(_ int64, r tablesim.Row) bool {
		if st, ok := out[r[0].Int]; ok {
			st.Clicked = r[1].Int
		}
		return true
	})
	return out, nil
}
