package click

import (
	"testing"

	"scidb/internal/array"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != cfg.Events {
		t.Fatalf("events = %d", s.Count())
	}
	cell, ok := s.At(array.Coord{1})
	if !ok {
		t.Fatal("first event missing")
	}
	res := cell[2].Arr
	if res == nil || res.Count() != cfg.ResultsPer {
		t.Fatalf("results nested array wrong: %v", res)
	}
	// Deterministic by seed.
	s2, _ := Generate(cfg)
	c2, _ := s2.At(array.Coord{1})
	if c2[1].Str != cell[1].Str {
		t.Error("generator not deterministic")
	}
	if _, err := Generate(Config{}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestSurfacedNeverClickedConsistency(t *testing.T) {
	cfg := DefaultConfig()
	s, _ := Generate(cfg)
	viaArray, err := SurfacedNeverClicked(s)
	if err != nil {
		t.Fatal(err)
	}
	_, impressions, err := ToWeblogTables(s)
	if err != nil {
		t.Fatal(err)
	}
	viaSQL, err := SurfacedNeverClickedSQL(impressions)
	if err != nil {
		t.Fatal(err)
	}
	// The two engines must agree exactly.
	if len(viaArray) != len(viaSQL) {
		t.Fatalf("items: array %d, sql %d", len(viaArray), len(viaSQL))
	}
	var surfacedTotal, clickedTotal int64
	for item, a := range viaArray {
		b, ok := viaSQL[item]
		if !ok || a.Surfaced != b.Surfaced || a.Clicked != b.Clicked {
			t.Fatalf("item %d: array %+v, sql %+v", item, a, b)
		}
		surfacedTotal += a.Surfaced
		clickedTotal += a.Clicked
	}
	if surfacedTotal != cfg.Events*cfg.ResultsPer {
		t.Errorf("surfaced = %d, want %d", surfacedTotal, cfg.Events*cfg.ResultsPer)
	}
	if clickedTotal == 0 || clickedTotal >= cfg.Events {
		t.Errorf("clicked = %d; expected some but not all searches clicked", clickedTotal)
	}
	// The headline analysis: many items are surfaced yet never clicked.
	var never int
	for _, st := range viaArray {
		if st.Clicked == 0 {
			never++
		}
	}
	if never == 0 {
		t.Error("no surfaced-never-clicked items; generator too clicky")
	}
}

func TestSearchQuality(t *testing.T) {
	cfg := DefaultConfig()
	s, _ := Generate(cfg)
	frac, clicked, err := SearchQuality(s, 6)
	if err != nil {
		t.Fatal(err)
	}
	if clicked == 0 {
		t.Fatal("no clicked searches")
	}
	if frac < 0 || frac > 1 {
		t.Errorf("fraction = %v", frac)
	}
	// With bias 0.5, a meaningful share of clicks land beyond rank 6
	// (the paper's flawed-search signal).
	if frac == 0 {
		t.Error("no deep clicks; generator not exercising the signal")
	}
	// k = results-per means nothing can be beyond it.
	frac, _, _ = SearchQuality(s, cfg.ResultsPer)
	if frac != 0 {
		t.Errorf("beyond-last fraction = %v, want 0", frac)
	}
}

func TestSessionPaths(t *testing.T) {
	cfg := DefaultConfig()
	s, _ := Generate(cfg)
	paths, err := SessionPaths(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no user paths")
	}
	var total int
	for user, items := range paths {
		if user < 1 || user > cfg.Users {
			t.Errorf("bad user id %d", user)
		}
		total += len(items)
	}
	if total == 0 {
		t.Error("no clicked items in any path")
	}
}

func TestWeblogTablesShape(t *testing.T) {
	cfg := DefaultConfig()
	s, _ := Generate(cfg)
	searches, impressions, err := ToWeblogTables(s)
	if err != nil {
		t.Fatal(err)
	}
	if int64(searches.NumRows()) != cfg.Events {
		t.Errorf("searches rows = %d", searches.NumRows())
	}
	if int64(impressions.NumRows()) != cfg.Events*cfg.ResultsPer {
		t.Errorf("impressions rows = %d", impressions.NumRows())
	}
}

func TestAnalyticsOnWrongSchema(t *testing.T) {
	s := &array.Schema{
		Name:  "notclicks",
		Dims:  []array.Dimension{{Name: "t", High: 2}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TInt64}},
	}
	a := array.MustNew(s)
	if _, err := SurfacedNeverClicked(a); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, _, err := SearchQuality(a, 3); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := SessionPaths(a); err == nil {
		t.Error("wrong schema accepted")
	}
}
