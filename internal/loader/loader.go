// Package loader implements the streaming bulk loader of §2.8: "Most data
// will come into SciDB through a streaming bulk loader. We assume that the
// input stream is ordered by some dominant dimension — often time. SciDB
// will divide the load stream into site-specific substreams. Each one will
// appear in the main memory of the associated node."
//
// The loader consumes a Record stream, routes each record to its owning
// site under a partitioning scheme, and writes into per-site sinks (a
// storage.Store buffers in memory and spills to rectangular buckets; a
// cluster coordinator ships batches to remote nodes).
package loader

import (
	"errors"
	"fmt"

	"scidb/internal/array"
	"scidb/internal/cluster"
	"scidb/internal/insitu"
	"scidb/internal/partition"
	"scidb/internal/storage"
)

// Record is one cell of the load stream.
type Record struct {
	Coord array.Coord
	Cell  array.Cell
}

// Sink receives one site's substream.
type Sink interface {
	Put(c array.Coord, cell array.Cell) error
	Flush() error
}

// Stats summarizes a load.
type Stats struct {
	Records int64
	PerSite []int64
}

// Load drains the record stream, splitting it into site substreams by the
// scheme. sinks[i] receives site i's substream. All sinks are flushed at
// the end.
func Load(recs <-chan Record, scheme partition.Scheme, sinks []Sink) (Stats, error) {
	if scheme.NumNodes() > len(sinks) {
		return Stats{}, fmt.Errorf("loader: scheme wants %d sites, got %d sinks", scheme.NumNodes(), len(sinks))
	}
	st := Stats{PerSite: make([]int64, len(sinks))}
	for r := range recs {
		site := scheme.NodeFor(r.Coord)
		if err := sinks[site].Put(r.Coord, r.Cell); err != nil {
			return st, err
		}
		st.Records++
		st.PerSite[site]++
	}
	// Every sink is flushed even when one fails: a site's flush error must
	// not strand the buffered substreams of the sites after it.
	var flushErr error
	for _, s := range sinks {
		if err := s.Flush(); err != nil {
			flushErr = errors.Join(flushErr, err)
		}
	}
	return st, flushErr
}

// FromDataset streams a dataset's cells (the adaptor-based load path: the
// alternative to staying in situ).
func FromDataset(ds insitu.Dataset, box array.Box) <-chan Record {
	ch := make(chan Record, 256)
	go func() {
		defer close(ch)
		_ = ds.Scan(box, func(c array.Coord, cell array.Cell) bool {
			ch <- Record{Coord: c.Clone(), Cell: cell.Clone()}
			return true
		})
	}()
	return ch
}

// FromSlice streams an in-memory record list (tests and generators).
func FromSlice(recs []Record) <-chan Record {
	ch := make(chan Record, 256)
	go func() {
		defer close(ch)
		for _, r := range recs {
			ch <- r
		}
	}()
	return ch
}

// StoreSink adapts a storage.Store.
type StoreSink struct{ Store *storage.Store }

// Put implements Sink.
func (s StoreSink) Put(c array.Coord, cell array.Cell) error { return s.Store.Put(c, cell) }

// Flush implements Sink.
func (s StoreSink) Flush() error { return s.Store.Flush() }

// ArraySink adapts a plain in-memory array.
type ArraySink struct{ Array *array.Array }

// Put implements Sink.
func (s ArraySink) Put(c array.Coord, cell array.Cell) error { return s.Array.Set(c, cell) }

// Flush implements Sink.
func (s ArraySink) Flush() error { return nil }

// ClusterSink routes one site's substream through a coordinator. Because
// the coordinator re-applies the array's scheme, a single ClusterSink can
// serve as every site's sink.
type ClusterSink struct {
	Co    *cluster.Coordinator
	Array string
}

// Put implements Sink.
func (s ClusterSink) Put(c array.Coord, cell array.Cell) error {
	return s.Co.Put(s.Array, c, cell)
}

// Flush implements Sink.
func (s ClusterSink) Flush() error { return s.Co.Flush(s.Array) }

// Replicate returns n copies of one sink, for single-destination loads.
func Replicate(s Sink, n int) []Sink {
	out := make([]Sink, n)
	for i := range out {
		out[i] = s
	}
	return out
}
