package loader

import (
	"sync"
	"testing"
	"time"

	"scidb/internal/array"
	"scidb/internal/insitu"
	"scidb/internal/partition"
)

func TestBatchForRTT(t *testing.T) {
	for _, tc := range []struct {
		rtt  time.Duration
		want int
	}{
		{0, 16},                      // unmeasured link: base batch
		{500 * time.Microsecond, 16}, // sub-millisecond rounds down
		{time.Millisecond, 32},
		{3 * time.Millisecond, 64},
		{15 * time.Millisecond, 256},
		{time.Second, 256}, // cap holds on pathological links
		{-time.Millisecond, 16},
	} {
		if got := batchForRTT(tc.rtt); got != tc.want {
			t.Errorf("batchForRTT(%v) = %d, want %d", tc.rtt, got, tc.want)
		}
	}
}

// rttDest wraps a recording ChunkDest with a canned link RTT so the test can
// observe which batch size LoadParallel actually used.
type rttDest struct {
	rtt time.Duration

	mu      sync.Mutex
	batches []int
}

func (d *rttDest) AvgRTT() time.Duration { return d.rtt }
func (d *rttDest) Flush() error          { return nil }
func (d *rttDest) ShipChunks(site int, payloads [][]byte, cells int64) error {
	d.mu.Lock()
	d.batches = append(d.batches, len(payloads))
	d.mu.Unlock()
	return nil
}

func (d *rttDest) maxBatch() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	max := 0
	for _, b := range d.batches {
		if b > max {
			max = b
		}
	}
	return max
}

// TestLoadParallelAdaptiveBatch: with BatchChunks unset, a slow link grows
// the shipped batches past the base 16, and an explicit BatchChunks ignores
// the measured RTT entirely (scidb-load -batch stays an override).
func TestLoadParallelAdaptiveBatch(t *testing.T) {
	path, _ := writeGridCSV(t)
	schema := gridSchema()
	scheme := partition.Block{Nodes: 1, SplitDim: 0, High: 40}
	box := array.Box{Lo: array.Coord{1, 1}, Hi: array.Coord{40, 20}}
	// The 40x20 grid at stride 8 has 5x3 = 15 chunks: a serial shard flushes
	// them as one batch under the adaptive size (32 at 1ms RTT) but as
	// multiple under an explicit batch of 4.
	load := func(opts Options, dest *rttDest) {
		t.Helper()
		ds, err := (insitu.CSVAdaptor{}).Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		if _, err := LoadParallel(ds, box, schema, scheme, dest, opts); err != nil {
			t.Fatal(err)
		}
	}
	adaptive := &rttDest{rtt: time.Millisecond}
	load(Options{Parallelism: 1, Stride: []int64{8, 8}}, adaptive)
	if got := adaptive.maxBatch(); got != 15 {
		t.Errorf("adaptive batch at 1ms RTT shipped max %d chunks per batch, want all 15", got)
	}
	explicit := &rttDest{rtt: time.Hour} // huge RTT must be ignored
	load(Options{Parallelism: 1, Stride: []int64{8, 8}, BatchChunks: 4}, explicit)
	if got := explicit.maxBatch(); got > 4+1 {
		t.Errorf("explicit BatchChunks=4 shipped max %d chunks per batch", got)
	}
}
