package loader

import (
	"errors"
	"path/filepath"
	"testing"

	"scidb/internal/array"
	"scidb/internal/cluster"
	"scidb/internal/insitu"
	"scidb/internal/partition"
	"scidb/internal/storage"
)

func gridSchema() *array.Schema {
	return &array.Schema{
		Name: "grid",
		Dims: []array.Dimension{
			{Name: "x", High: 40, ChunkLen: 8},
			{Name: "y", High: 20, ChunkLen: 8},
		},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
}

// writeGridCSV writes a sparse grid (two thirds of cells present) and
// returns the expected content as an array.
func writeGridCSV(t *testing.T) (string, *array.Array) {
	t.Helper()
	a := array.MustNew(gridSchema())
	for x := int64(1); x <= 40; x++ {
		for y := int64(1); y <= 20; y++ {
			if (x+y)%3 == 0 {
				continue
			}
			if err := a.Set(array.Coord{x, y}, array.Cell{array.Float64(float64(x*1000 + y))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "grid.csv")
	if err := insitu.WriteCSV(path, a); err != nil {
		t.Fatal(err)
	}
	return path, a
}

func newSiteStores(t *testing.T, n int) []*storage.Store {
	t.Helper()
	stores := make([]*storage.Store, n)
	for i := range stores {
		st, err := storage.NewStore(gridSchema(), storage.Options{Stride: []int64{8, 8}})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	return stores
}

// scanAll drains a store's full content into a map keyed by coordinate.
func scanAll(t *testing.T, st *storage.Store) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	box := array.Box{Lo: array.Coord{1, 1}, Hi: array.Coord{40, 20}}
	if err := st.Scan(box, func(c array.Coord, cell array.Cell) bool {
		out[c.String()] = cell[0].Float
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLoadParallelDeterministic: the parallel pipeline must produce content
// bit-identical to the serial cell-at-a-time loader, at parallelism 1 and 4
// alike — shard boundaries and ship order may differ, the cells may not.
func TestLoadParallelDeterministic(t *testing.T) {
	path, src := writeGridCSV(t)
	schema := gridSchema()
	scheme := partition.Block{Nodes: 3, SplitDim: 0, High: 40}
	box := array.Box{Lo: array.Coord{1, 1}, Hi: array.Coord{40, 20}}

	// Serial baseline.
	serial := newSiteStores(t, 3)
	ds, err := (insitu.CSVAdaptor{}).Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sinks := make([]Sink, len(serial))
	for i, st := range serial {
		sinks[i] = StoreSink{st}
	}
	stSerial, err := Load(FromDataset(ds, box), scheme, sinks)
	ds.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stSerial.Records != src.Count() {
		t.Fatalf("serial records = %d; want %d", stSerial.Records, src.Count())
	}

	for _, par := range []int{1, 4} {
		stores := newSiteStores(t, 3)
		ds, err := (insitu.CSVAdaptor{}).Open(path)
		if err != nil {
			t.Fatal(err)
		}
		st, err := LoadParallel(ds, box, schema, scheme, StoreDest{Schema: schema, Stores: stores},
			Options{Parallelism: par, BatchChunks: 4, Stride: []int64{8, 8}})
		ds.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Records != stSerial.Records {
			t.Fatalf("par=%d records = %d; want %d", par, st.Records, stSerial.Records)
		}
		for i := range st.PerSite {
			if st.PerSite[i] != stSerial.PerSite[i] {
				t.Fatalf("par=%d per-site = %v; serial %v", par, st.PerSite, stSerial.PerSite)
			}
		}
		for i := range stores {
			got, want := scanAll(t, stores[i]), scanAll(t, serial[i])
			if len(got) != len(want) {
				t.Fatalf("par=%d site %d holds %d cells; serial %d", par, i, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("par=%d site %d cell %s = %v; want %v", par, i, k, got[k], v)
				}
			}
		}
	}
}

// TestLoadParallelIntoCluster: the ClusterDest path ships batches over the
// loadchunks op and ends in the same state as a coordinator-routed load.
func TestLoadParallelIntoCluster(t *testing.T) {
	path, src := writeGridCSV(t)
	schema := gridSchema()
	scheme := partition.Block{Nodes: 2, SplitDim: 0, High: 40}
	box := array.Box{Lo: array.Coord{1, 1}, Hi: array.Coord{40, 20}}

	tr := cluster.NewLocalWithOptions(2, cluster.LocalOptions{
		Persist: true, Stride: []int64{8, 8}, CacheBytes: 1 << 20,
	})
	co := cluster.NewCoordinator(tr, 0)
	if err := co.Create("grid", schema, scheme); err != nil {
		t.Fatal(err)
	}
	ds, err := (insitu.CSVAdaptor{}).Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	st, err := LoadParallel(ds, box, schema, scheme, ClusterDest{Co: co, Array: "grid"},
		Options{Parallelism: 4, Stride: []int64{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != src.Count() {
		t.Fatalf("records = %d; want %d", st.Records, src.Count())
	}
	n, err := co.Count("grid")
	if err != nil || n != src.Count() {
		t.Fatalf("cluster count = %d, %v; want %d", n, err, src.Count())
	}
	got, err := co.Scan("grid", box)
	if err != nil {
		t.Fatal(err)
	}
	mismatch := false
	src.Iter(func(c array.Coord, want array.Cell) bool {
		cell, ok := got.At(c)
		if !ok || cell[0].Float != want[0].Float {
			t.Errorf("cell %v = %v, %v; want %v", c, cell, ok, want)
			mismatch = true
			return false
		}
		return true
	})
	if mismatch {
		t.FailNow()
	}
}

// failingSink flushes with an error but must not prevent later sinks from
// flushing.
type failingSink struct{ err error }

func (s failingSink) Put(array.Coord, array.Cell) error { return nil }
func (s failingSink) Flush() error                      { return s.err }

type flushRecorder struct{ flushed bool }

func (s *flushRecorder) Put(array.Coord, array.Cell) error { return nil }
func (s *flushRecorder) Flush() error                      { s.flushed = true; return nil }

// TestLoadFlushesEverySink: one site's flush failure must not strand the
// buffered substreams of the sites after it, and every flush error joins
// the returned error.
func TestLoadFlushesEverySink(t *testing.T) {
	errA := errors.New("site 0 disk full")
	errC := errors.New("site 2 link down")
	rec := &flushRecorder{}
	scheme := partition.Block{Nodes: 3, SplitDim: 0, High: 40}
	_, err := Load(FromSlice(nil), scheme, []Sink{failingSink{errA}, rec, failingSink{errC}})
	if !rec.flushed {
		t.Error("sink after the failing one was not flushed")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errC) {
		t.Errorf("joined error = %v; want both %v and %v", err, errA, errC)
	}
}
