package loader

import (
	"path/filepath"
	"testing"

	"scidb/internal/array"
	"scidb/internal/cluster"
	"scidb/internal/insitu"
	"scidb/internal/partition"
	"scidb/internal/storage"
)

func streamSchema() *array.Schema {
	return &array.Schema{
		Name:  "stream",
		Dims:  []array.Dimension{{Name: "t", High: 100}, {Name: "site", High: 10}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
}

func makeRecords(n int64) []Record {
	var out []Record
	for t := int64(1); t <= n; t++ {
		for s := int64(1); s <= 10; s++ {
			out = append(out, Record{
				Coord: array.Coord{t, s},
				Cell:  array.Cell{array.Float64(float64(t*100 + s))},
			})
		}
	}
	return out
}

func TestLoadSplitsSubstreams(t *testing.T) {
	recs := makeRecords(20)
	scheme := partition.Block{Nodes: 2, SplitDim: 1, High: 10}
	a1 := array.MustNew(streamSchema())
	a2 := array.MustNew(streamSchema())
	st, err := Load(FromSlice(recs), scheme, []Sink{ArraySink{a1}, ArraySink{a2}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 200 {
		t.Errorf("records = %d", st.Records)
	}
	if st.PerSite[0] != 100 || st.PerSite[1] != 100 {
		t.Errorf("per-site = %v", st.PerSite)
	}
	// Site 0 holds sites 1..5, site 1 holds 6..10.
	if a1.Count() != 100 || a2.Count() != 100 {
		t.Errorf("counts = %d, %d", a1.Count(), a2.Count())
	}
	if !a1.Exists(array.Coord{3, 5}) || a1.Exists(array.Coord{3, 6}) {
		t.Error("site 0 split wrong")
	}
	if !a2.Exists(array.Coord{3, 6}) || a2.Exists(array.Coord{3, 5}) {
		t.Error("site 1 split wrong")
	}
}

func TestLoadIntoStores(t *testing.T) {
	recs := makeRecords(10)
	scheme := partition.Block{Nodes: 2, SplitDim: 1, High: 10}
	dir := t.TempDir()
	var sinks []Sink
	var stores []*storage.Store
	for i := 0; i < 2; i++ {
		st, err := storage.NewStore(streamSchema(), storage.Options{
			Dir:      filepath.Join(dir, "site", string(rune('a'+i))),
			Stride:   []int64{32, 8},
			MemLimit: 256, // tiny: force bucket formation during load
		})
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st)
		sinks = append(sinks, StoreSink{st})
	}
	st, err := Load(FromSlice(recs), scheme, sinks)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 100 {
		t.Errorf("records = %d", st.Records)
	}
	// Both stores flushed buckets and answer queries.
	for i, s := range stores {
		if s.NumBuckets() == 0 {
			t.Errorf("site %d wrote no buckets", i)
		}
	}
	cell, ok, err := stores[0].Get(array.Coord{7, 2})
	if err != nil || !ok || cell[0].Float != 702 {
		t.Errorf("site-0 get = %v,%v,%v", cell, ok, err)
	}
	cell, ok, err = stores[1].Get(array.Coord{7, 9})
	if err != nil || !ok || cell[0].Float != 709 {
		t.Errorf("site-1 get = %v,%v,%v", cell, ok, err)
	}
}

func TestLoadFromDatasetIntoCluster(t *testing.T) {
	// CSV file -> adaptor stream -> cluster coordinator.
	a := array.MustNew(streamSchema())
	for tt := int64(1); tt <= 8; tt++ {
		_ = a.Set(array.Coord{tt, 1}, array.Cell{array.Float64(float64(tt))})
	}
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := insitu.WriteCSV(path, a); err != nil {
		t.Fatal(err)
	}
	ds, err := (insitu.CSVAdaptor{}).Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	tr := cluster.NewLocal(2)
	co := cluster.NewCoordinator(tr, 0)
	scheme := partition.Block{Nodes: 2, SplitDim: 0, High: 100}
	if err := co.Create("stream", streamSchema(), scheme); err != nil {
		t.Fatal(err)
	}
	sink := ClusterSink{Co: co, Array: "stream"}
	box := array.NewBox(array.Coord{1, 1}, array.Coord{100, 10})
	st, err := Load(FromDataset(ds, box), scheme, Replicate(sink, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 8 {
		t.Errorf("records = %d", st.Records)
	}
	n, err := co.Count("stream")
	if err != nil || n != 8 {
		t.Errorf("cluster count = %d,%v", n, err)
	}
}

func TestLoadSchemeSinkMismatch(t *testing.T) {
	scheme := partition.Block{Nodes: 3, SplitDim: 0, High: 10}
	if _, err := Load(FromSlice(nil), scheme, []Sink{ArraySink{array.MustNew(streamSchema())}}); err == nil {
		t.Error("sink shortfall accepted")
	}
}

func TestLoadPropagatesSinkError(t *testing.T) {
	// Out-of-bounds record should surface the sink error.
	recs := []Record{{Coord: array.Coord{1000, 1}, Cell: array.Cell{array.Float64(0)}}}
	scheme := partition.Block{Nodes: 1, SplitDim: 0, High: 100}
	a := array.MustNew(streamSchema())
	if _, err := Load(FromSlice(recs), scheme, []Sink{ArraySink{a}}); err == nil {
		t.Error("out-of-bounds record accepted")
	}
}
