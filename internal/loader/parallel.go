// Parallel partition-on-load pipeline (§2.8). LoadParallel shards the
// input via the insitu adaptors (byte ranges for CSV, row slabs for NCL,
// chunk groups for SDF), parses the shards concurrently on the exec pool,
// routes cells into per-site chunk builders, encodes chunks — zone maps
// included — at load time, and ships the pre-encoded payloads to their
// owning sites in batches. The owning worker adopts the payload bytes as
// a bucket verbatim (storage.AdoptEncoded), so a cell is parsed once and
// encoded once no matter how many machines the load crosses.
package loader

import (
	"context"
	"sync/atomic"
	"time"

	"scidb/internal/array"
	"scidb/internal/cluster"
	"scidb/internal/exec"
	"scidb/internal/insitu"
	"scidb/internal/obs"
	"scidb/internal/partition"
	"scidb/internal/storage"
)

// Options tunes LoadParallel.
type Options struct {
	// Parallelism is the shard/parse concurrency. Zero uses the exec pool's
	// configured parallelism.
	Parallelism int
	// BatchChunks is how many chunks a site accumulates before its batch is
	// encoded and shipped. Zero means adaptive: when the destination can
	// report an observed link round-trip time (RTTSource), the batch grows
	// with the RTT — a slow link amortizes more chunks per round trip —
	// clamped to [16, 256]; otherwise 16. A nonzero value is an explicit
	// override (scidb-load -batch). Larger batches amortize more
	// round-trips at the cost of load-side memory.
	BatchChunks int
	// Stride overrides the chunk grid per dimension (zero entries keep the
	// schema's ChunkLen). Match it to the destination store's bucket stride
	// so shipped chunks are adopted as whole buckets.
	Stride []int64
}

// ChunkDest receives encoded chunk batches for one site. Implementations
// must be safe for concurrent ShipChunks calls (shards flush
// independently).
type ChunkDest interface {
	// ShipChunks delivers encoded chunk payloads (EncodeChunk bytes) owned
	// by site; cells is the total cell count across them.
	ShipChunks(site int, payloads [][]byte, cells int64) error
	// Flush finalizes the destination after all shards complete (manifest
	// saves, coordinator flush fan-out).
	Flush() error
}

// RTTSource is implemented by destinations that observe their link's round
// trips; LoadParallel uses it to size batches adaptively when
// Options.BatchChunks is zero.
type RTTSource interface {
	// AvgRTT reports the destination link's mean round-trip time so far
	// (zero when nothing has been measured — e.g. an in-process transport).
	AvgRTT() time.Duration
}

// ClusterDest ships chunk batches to the owning workers through a
// coordinator over the batched loadchunks wire op.
type ClusterDest struct {
	Co    *cluster.Coordinator
	Array string
}

// AvgRTT implements RTTSource from the coordinator's transport counters.
func (d ClusterDest) AvgRTT() time.Duration {
	ts, ok := d.Co.TransportStats()
	if !ok || ts.Calls == 0 {
		return 0
	}
	return time.Duration(ts.RoundTripNanos / ts.Calls)
}

// batchForRTT maps an observed link round-trip time to a chunk batch size:
// 16 at sub-millisecond RTT, growing one base batch per millisecond, capped
// at 256 so load-side memory stays bounded. The shape follows the round-trip
// economics: the per-batch overhead a shipment must amortize is one RTT, so
// batch size scales linearly with it.
func batchForRTT(rtt time.Duration) int {
	b := 16 * (1 + int(rtt/time.Millisecond))
	if b < 16 {
		b = 16
	}
	if b > 256 {
		b = 256
	}
	return b
}

// ShipChunks implements ChunkDest. Concurrent calls pipeline over the
// transport's pooled connections.
func (d ClusterDest) ShipChunks(site int, payloads [][]byte, cells int64) error {
	return d.Co.LoadChunks(d.Array, site, payloads, cells)
}

// Flush implements ChunkDest.
func (d ClusterDest) Flush() error { return d.Co.Flush(d.Array) }

// StoreDest adopts chunk batches directly into per-site local stores — the
// single-machine form of the same pipeline, and the unit-test harness for
// it.
type StoreDest struct {
	Schema *array.Schema
	Stores []*storage.Store
}

// ShipChunks implements ChunkDest.
func (d StoreDest) ShipChunks(site int, payloads [][]byte, cells int64) error {
	st := d.Stores[site]
	for _, p := range payloads {
		ch, err := storage.DecodeChunk(d.Schema, p)
		if err != nil {
			return err
		}
		if err := st.AdoptEncoded(p, ch); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements ChunkDest.
func (d StoreDest) Flush() error {
	var err error
	for _, st := range d.Stores {
		if e := st.Flush(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// loadCounters is the pipeline's obs instrumentation, shared process-wide
// (the LOAD experiment and CI smoke grep these names from BENCH_LOAD.json).
type loadCounters struct {
	records, chunks, batches, bytes *obs.Counter
	parseNanos, encNanos, shipNanos *obs.Counter
}

func newLoadCounters() loadCounters {
	r := obs.Default()
	return loadCounters{
		records:    r.Counter("scidb_load_records_total", "cells routed by the parallel bulk loader"),
		chunks:     r.Counter("scidb_load_chunks_shipped_total", "encoded chunks shipped to owning sites"),
		batches:    r.Counter("scidb_load_batches_shipped_total", "chunk batches shipped (one ShipChunks call each)"),
		bytes:      r.Counter("scidb_load_bytes_shipped_total", "encoded chunk payload bytes shipped"),
		parseNanos: r.Counter("scidb_load_parse_nanos_total", "wall nanoseconds parsing + routing shard input"),
		encNanos:   r.Counter("scidb_load_encode_nanos_total", "wall nanoseconds encoding chunks at load time"),
		shipNanos:  r.Counter("scidb_load_ship_nanos_total", "wall nanoseconds shipping chunk batches"),
	}
}

// LoadParallel runs the parallel partition-on-load pipeline: split ds into
// shards, parse them concurrently, build stride-aligned chunks per site,
// encode at load time, and ship batches to dest. schema is the destination
// array's schema; the chunk grid follows its ChunkLen (or Options.Stride).
//
// Cell-for-cell the result equals a serial Load into the same destination;
// only the bucket boundaries may differ. Input cells must have unique
// coordinates — with duplicates, which copy wins is undefined under
// concurrency (a serial Load makes the last one win).
func LoadParallel(ds insitu.Dataset, box array.Box, schema *array.Schema, scheme partition.Scheme, dest ChunkDest, opts Options) (Stats, error) {
	par := opts.Parallelism
	if par <= 0 {
		par = exec.Parallelism()
	}
	batch := opts.BatchChunks
	if batch <= 0 {
		batch = 16
		if src, ok := dest.(RTTSource); ok {
			batch = batchForRTT(src.AvgRTT())
		}
	}
	bs := schema.Clone()
	bs.Name = schema.Name + "_loadbuf"
	for i := range bs.Dims {
		if i < len(opts.Stride) && opts.Stride[i] > 0 {
			bs.Dims[i].ChunkLen = opts.Stride[i]
		}
	}
	shards, err := insitu.Split(ds, par)
	if err != nil {
		return Stats{}, err
	}
	nSites := scheme.NumNodes()
	ctr := newLoadCounters()
	records := make([]atomic.Int64, len(shards))
	perSite := make([]atomic.Int64, nSites)
	err = exec.Default().Map(context.Background(), len(shards), func(si int) error {
		shard := shards[si]
		start := time.Now()
		var encNanos, shipNanos time.Duration
		builders := make([]*array.Array, nSites)
		nChunks := make([]int, nSites)
		flushSite := func(site int) error {
			b := builders[site]
			if b == nil {
				return nil
			}
			builders[site], nChunks[site] = nil, 0
			t0 := time.Now()
			chunks := b.Chunks() // origin-sorted: deterministic ship order
			payloads := make([][]byte, 0, len(chunks))
			var cells, payloadBytes int64
			for _, ch := range chunks {
				if ch.CellsPresent() == 0 {
					continue
				}
				raw, _, err := storage.EncodeChunkZones(bs, ch)
				if err != nil {
					return err
				}
				payloads = append(payloads, raw)
				cells += ch.CellsPresent()
				payloadBytes += int64(len(raw))
			}
			encNanos += time.Since(t0)
			if len(payloads) == 0 {
				return nil
			}
			t0 = time.Now()
			if err := dest.ShipChunks(site, payloads, cells); err != nil {
				return err
			}
			shipNanos += time.Since(t0)
			ctr.chunks.Add(int64(len(payloads)))
			ctr.batches.Add(1)
			ctr.bytes.Add(payloadBytes)
			return nil
		}
		var innerErr error
		scanErr := shard.Scan(box, func(c array.Coord, cell array.Cell) bool {
			site := scheme.NodeFor(c)
			b := builders[site]
			if b == nil {
				var err error
				if b, err = array.New(bs); err != nil {
					innerErr = err
					return false
				}
				builders[site] = b
			}
			if _, exists := b.ChunkAt(c); !exists {
				nChunks[site]++
			}
			if err := b.Set(c.Clone(), cell.Clone()); err != nil {
				innerErr = err
				return false
			}
			records[si].Add(1)
			perSite[site].Add(1)
			if nChunks[site] >= batch {
				if err := flushSite(site); err != nil {
					innerErr = err
					return false
				}
			}
			return true
		})
		if scanErr != nil {
			return scanErr
		}
		if innerErr != nil {
			return innerErr
		}
		for site := range builders {
			if err := flushSite(site); err != nil {
				return err
			}
		}
		total := time.Since(start)
		if parse := total - encNanos - shipNanos; parse > 0 {
			ctr.parseNanos.Add(int64(parse))
		}
		ctr.encNanos.Add(int64(encNanos))
		ctr.shipNanos.Add(int64(shipNanos))
		return nil
	})
	st := Stats{PerSite: make([]int64, nSites)}
	for i := range records {
		st.Records += records[i].Load()
	}
	for i := range perSite {
		st.PerSite[i] = perSite[i].Load()
	}
	ctr.records.Add(st.Records)
	if err != nil {
		return st, err
	}
	return st, dest.Flush()
}
