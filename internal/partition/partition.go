// Package partition implements §2.7 grid partitioning: fixed block
// partitioning of the coordinate system, Gamma-style hash and range
// partitioning, partitioning that changes over time (epochs), and the
// automatic database designer that derives a partitioning from a sample
// workload in the style of C-Store/H-Store.
package partition

import (
	"fmt"
	"sort"

	"scidb/internal/array"
)

// Scheme assigns array coordinates to grid nodes.
type Scheme interface {
	Name() string
	NumNodes() int
	// NodeFor returns the node owning the cell at c.
	NodeFor(c array.Coord) int
}

// Block is fixed partitioning: dimension SplitDim's range [1..High] is cut
// into NumNodes equal contiguous slabs. "For these applications
// [sky surveys], dividing the coordinate system for the sky into fixed
// partitions will probably work well."
type Block struct {
	Nodes    int
	SplitDim int
	High     int64
}

// Name implements Scheme.
func (b Block) Name() string { return fmt.Sprintf("block(dim=%d,n=%d)", b.SplitDim, b.Nodes) }

// NumNodes implements Scheme.
func (b Block) NumNodes() int { return b.Nodes }

// NodeFor implements Scheme.
func (b Block) NodeFor(c array.Coord) int {
	v := c[b.SplitDim]
	if v < 1 {
		v = 1
	}
	if v > b.High {
		v = b.High
	}
	per := (b.High + int64(b.Nodes) - 1) / int64(b.Nodes)
	n := int((v - 1) / per)
	if n >= b.Nodes {
		n = b.Nodes - 1
	}
	return n
}

// Hash is Gamma-style hash partitioning on one or more dimensions,
// typically at chunk granularity (ChunkLen aligns cells of one chunk to one
// node; 1 hashes individual cells).
type Hash struct {
	Nodes    int
	Dims     []int
	ChunkLen int64
}

// Name implements Scheme.
func (h Hash) Name() string { return fmt.Sprintf("hash(dims=%v,n=%d)", h.Dims, h.Nodes) }

// NumNodes implements Scheme.
func (h Hash) NumNodes() int { return h.Nodes }

// NodeFor implements Scheme.
func (h Hash) NodeFor(c array.Coord) int {
	cl := h.ChunkLen
	if cl <= 0 {
		cl = 1
	}
	var x uint64 = 1469598103934665603 // FNV offset basis
	for _, d := range h.Dims {
		v := uint64((c[d] - 1) / cl)
		x ^= v
		x *= 1099511628211
	}
	return int(x % uint64(h.Nodes))
}

// Range is Gamma-style range partitioning: Splits[i] is the last coordinate
// value (inclusive) of node i on SplitDim; the final node takes the rest.
type Range struct {
	SplitDim int
	Splits   []int64 // len == nodes-1, ascending
	Nodes    int
}

// Name implements Scheme.
func (r Range) Name() string { return fmt.Sprintf("range(dim=%d,n=%d)", r.SplitDim, r.Nodes) }

// NumNodes implements Scheme.
func (r Range) NumNodes() int { return r.Nodes }

// NodeFor implements Scheme.
func (r Range) NodeFor(c array.Coord) int {
	v := c[r.SplitDim]
	return sort.Search(len(r.Splits), func(i int) bool { return r.Splits[i] >= v })
}

// Epoch allows "the partitioning to change over time. In this way, a first
// partitioning scheme is used for time less than T and a second
// partitioning scheme for time > T." TimeDim is the dominant (load-order)
// dimension consulted for the epoch boundary.
type Epoch struct {
	TimeDim int
	// Boundaries[i] is the first time coordinate governed by Schemes[i+1];
	// Schemes[0] governs everything before Boundaries[0].
	Boundaries []int64
	Schemes    []Scheme
}

// Name implements Scheme.
func (e Epoch) Name() string { return fmt.Sprintf("epoch(%d schemes)", len(e.Schemes)) }

// NumNodes implements Scheme.
func (e Epoch) NumNodes() int {
	n := 0
	for _, s := range e.Schemes {
		if s.NumNodes() > n {
			n = s.NumNodes()
		}
	}
	return n
}

// NodeFor implements Scheme.
func (e Epoch) NodeFor(c array.Coord) int {
	t := c[e.TimeDim]
	i := sort.Search(len(e.Boundaries), func(i int) bool { return e.Boundaries[i] > t })
	return e.Schemes[i].NodeFor(c)
}

// Validate checks epoch construction.
func (e Epoch) Validate() error {
	if len(e.Schemes) != len(e.Boundaries)+1 {
		return fmt.Errorf("partition: epoch needs len(schemes) == len(boundaries)+1")
	}
	for i := 1; i < len(e.Boundaries); i++ {
		if e.Boundaries[i] <= e.Boundaries[i-1] {
			return fmt.Errorf("partition: epoch boundaries must ascend")
		}
	}
	return nil
}

// Pruner is implemented by schemes that can enumerate the nodes whose
// partitions intersect a coordinate box, letting the coordinator skip
// nodes that cannot hold matching cells.
type Pruner interface {
	// NodesForBox returns the nodes that may own cells inside [lo, hi].
	NodesForBox(lo, hi array.Coord) []int
}

// NodesForBox implements Pruner for Block: only the slabs overlapping the
// box's split-dimension range are touched.
func (b Block) NodesForBox(lo, hi array.Coord) []int {
	nLo := b.NodeFor(lo)
	nHi := b.NodeFor(hi)
	if nHi < nLo {
		nLo, nHi = nHi, nLo
	}
	out := make([]int, 0, nHi-nLo+1)
	for n := nLo; n <= nHi; n++ {
		out = append(out, n)
	}
	return out
}

// NodesForBox implements Pruner for Range.
func (r Range) NodesForBox(lo, hi array.Coord) []int {
	nLo := r.NodeFor(lo)
	nHi := r.NodeFor(hi)
	if nHi < nLo {
		nLo, nHi = nHi, nLo
	}
	out := make([]int, 0, nHi-nLo+1)
	for n := nLo; n <= nHi; n++ {
		out = append(out, n)
	}
	return out
}

// Boxer is implemented by contiguous schemes (Block, Range) that can
// describe a node's ownership as a sub-box of a query box: distributed
// in-situ registration uses it to hand each worker its slab of an external
// file. ok is false when the node owns no part of [lo, hi].
type Boxer interface {
	BoxFor(node int, lo, hi array.Coord) (array.Coord, array.Coord, bool)
}

// BoxFor implements Boxer for Block: node n owns split-dimension values
// [n*per+1, (n+1)*per] with per = ceil(High/Nodes), clipped to the box.
func (b Block) BoxFor(node int, lo, hi array.Coord) (array.Coord, array.Coord, bool) {
	per := (b.High + int64(b.Nodes) - 1) / int64(b.Nodes)
	slabLo := int64(node)*per + 1
	slabHi := slabLo + per - 1
	if node == b.Nodes-1 && slabHi < hi[b.SplitDim] {
		// NodeFor clamps out-of-range values to the last node; its slab
		// mirrors that by absorbing everything above.
		slabHi = hi[b.SplitDim]
	}
	return clipSlab(b.SplitDim, slabLo, slabHi, lo, hi)
}

// BoxFor implements Boxer for Range: node n owns (Splits[n-1], Splits[n]]
// on SplitDim, with the first node open below and the last open above.
func (r Range) BoxFor(node int, lo, hi array.Coord) (array.Coord, array.Coord, bool) {
	slabLo := lo[r.SplitDim]
	if node > 0 {
		if node-1 >= len(r.Splits) {
			return nil, nil, false
		}
		slabLo = r.Splits[node-1] + 1
	}
	slabHi := hi[r.SplitDim]
	if node < len(r.Splits) {
		slabHi = r.Splits[node]
	}
	return clipSlab(r.SplitDim, slabLo, slabHi, lo, hi)
}

// clipSlab intersects a split-dimension interval with the query box.
func clipSlab(dim int, slabLo, slabHi int64, lo, hi array.Coord) (array.Coord, array.Coord, bool) {
	if slabLo < lo[dim] {
		slabLo = lo[dim]
	}
	if slabHi > hi[dim] {
		slabHi = hi[dim]
	}
	if slabLo > slabHi {
		return nil, nil, false
	}
	outLo, outHi := lo.Clone(), hi.Clone()
	outLo[dim], outHi[dim] = slabLo, slabHi
	return outLo, outHi, true
}

// SampleAccess is one entry of a sample workload: a cell (or cell region
// representative) and how often it is touched.
type SampleAccess struct {
	Coord  array.Coord
	Weight int64
}

// Design is the automatic database designer (§2.7: "Like C-Store and
// H-Store, we plan an automatic data base designer which will use a sample
// workload to do the partitioning. This designer can be run periodically on
// the actual workload, and suggest modifications.") It derives a Range
// scheme on splitDim whose per-node access weight is balanced.
func Design(workload []SampleAccess, splitDim, nodes int) (Range, error) {
	if nodes < 1 {
		return Range{}, fmt.Errorf("partition: need at least one node")
	}
	if len(workload) == 0 {
		return Range{}, fmt.Errorf("partition: empty sample workload")
	}
	// Histogram of weight per coordinate value on splitDim.
	hist := map[int64]int64{}
	var total int64
	for _, a := range workload {
		hist[a.Coord[splitDim]] += a.Weight
		total += a.Weight
	}
	keys := make([]int64, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	// Greedy equal-weight split.
	target := total / int64(nodes)
	splits := make([]int64, 0, nodes-1)
	var acc int64
	for _, k := range keys {
		acc += hist[k]
		if acc >= target && len(splits) < nodes-1 {
			splits = append(splits, k)
			acc = 0
		}
	}
	for len(splits) < nodes-1 {
		last := keys[len(keys)-1]
		if len(splits) > 0 {
			last = splits[len(splits)-1]
		}
		splits = append(splits, last+1)
	}
	return Range{SplitDim: splitDim, Splits: splits, Nodes: nodes}, nil
}

// Imbalance computes the load-balance metric used by the PART experiment:
// max node weight / mean node weight under the scheme (1.0 is perfect).
func Imbalance(s Scheme, workload []SampleAccess) float64 {
	loads := make([]int64, s.NumNodes())
	var total int64
	for _, a := range workload {
		loads[s.NodeFor(a.Coord)] += a.Weight
		total += a.Weight
	}
	if total == 0 {
		return 1
	}
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	mean := float64(total) / float64(len(loads))
	return float64(max) / mean
}

// Loads returns per-node access weights under the scheme.
func Loads(s Scheme, workload []SampleAccess) []int64 {
	loads := make([]int64, s.NumNodes())
	for _, a := range workload {
		loads[s.NodeFor(a.Coord)] += a.Weight
	}
	return loads
}
