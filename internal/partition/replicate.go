package partition

import (
	"scidb/internal/array"
)

// Replicated implements the PanSTARRS tactic of §2.13: when an
// observation's true location is uncertain ("the actual object location may
// be elsewhere"), placing it redundantly in every partition within the
// maximum possible location error ensures that uncertain spatial joins can
// be performed without moving data elements.
type Replicated struct {
	// Scheme is the underlying placement.
	Scheme Scheme
	// MaxErr is the maximum possible location error, in cells per
	// dimension (Chebyshev radius).
	MaxErr int64
}

// Name implements Scheme (primary placement only).
func (r Replicated) Name() string { return "replicated(" + r.Scheme.Name() + ")" }

// NumNodes implements Scheme.
func (r Replicated) NumNodes() int { return r.Scheme.NumNodes() }

// NodeFor implements Scheme: the primary owner is the underlying scheme's.
func (r Replicated) NodeFor(c array.Coord) int { return r.Scheme.NodeFor(c) }

// NodesFor returns every node that must hold a copy of the cell at c: the
// owners of all cells within MaxErr, primary owner first (the Replicator
// contract). An observation near a partition boundary lands on both sides,
// so a join probe for any location within the error bound finds it locally.
func (r Replicated) NodesFor(c array.Coord) []int {
	primary := r.Scheme.NodeFor(c)
	if r.MaxErr <= 0 {
		return []int{primary}
	}
	lo := make(array.Coord, len(c))
	hi := make(array.Coord, len(c))
	for i := range c {
		lo[i] = c[i] - r.MaxErr
		if lo[i] < 1 {
			lo[i] = 1
		}
		hi[i] = c[i] + r.MaxErr
	}
	seen := map[int]bool{primary: true}
	out := []int{primary}
	array.IterBox(array.Box{Lo: lo, Hi: hi}, func(p array.Coord) bool {
		n := r.Scheme.NodeFor(p)
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
		return true
	})
	return out
}

// ReplicationFactor computes the average number of copies per cell for a
// sample of coordinates — the space price of movement-free uncertain
// joins.
func (r Replicated) ReplicationFactor(sample []array.Coord) float64 {
	if len(sample) == 0 {
		return 1
	}
	var total int
	for _, c := range sample {
		total += len(r.NodesFor(c))
	}
	return float64(total) / float64(len(sample))
}
