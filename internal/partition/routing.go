package partition

import (
	"fmt"
	"sort"
	"sync"

	"scidb/internal/array"
)

// Replicator is implemented by schemes that place a cell on more than one
// node. NodesFor returns every node that must hold a copy of the cell at c,
// primary owner first; writers fan each cell to all of them, readers may
// consult any. Replicated (uncertain-location replication, §2.13) and
// Routing (online rebalancing) both satisfy it.
type Replicator interface {
	NodesFor(c array.Coord) []int
}

// ChunkRoute is one routing-table override: the chunk at Origin (grid-
// aligned, stride-sized) lives on Nodes, owner first. A single node means
// the chunk was migrated; several mean it is k-replicated.
type ChunkRoute struct {
	Origin array.Coord
	Nodes  []int
}

// Routing is a versioned chunk→nodes map layered over a base Scheme — the
// placement structure that makes rebalancing live. Placement starts as the
// base scheme's; the rebalancer overrides individual chunks (migrating or
// k-replicating them) without touching the rest of the coordinate space.
// Queries consult the overrides to pick a reader per chunk and to exclude
// stale or duplicate copies; writes fan to every node in a chunk's replica
// set. Every override bumps Version, so cooperating caches and peers can
// detect staleness cheaply. Safe for concurrent use.
type Routing struct {
	base   Scheme
	stride []int64

	mu        sync.RWMutex
	version   int64
	overrides map[string]ChunkRoute
}

// NewRouting wraps base with an empty override table. stride fixes the
// chunk grid the overrides are keyed on (zero/missing entries default to
// 64, matching the storage bucket default); it should match the workers'
// bucket stride so a routed chunk is a whole bucket.
func NewRouting(base Scheme, nd int, stride []int64) *Routing {
	st := make([]int64, nd)
	for i := range st {
		if i < len(stride) && stride[i] > 0 {
			st[i] = stride[i]
		} else {
			st[i] = 64
		}
	}
	return &Routing{base: base, stride: st, overrides: map[string]ChunkRoute{}}
}

// Base returns the underlying scheme.
func (r *Routing) Base() Scheme { return r.base }

// Stride returns the chunk grid stride the overrides are keyed on.
func (r *Routing) Stride() []int64 { return append([]int64(nil), r.stride...) }

// Name implements Scheme.
func (r *Routing) Name() string { return "routed(" + r.base.Name() + ")" }

// NumNodes implements Scheme.
func (r *Routing) NumNodes() int { return r.base.NumNodes() }

// OriginOf floors c to the routing chunk grid (1-based strides).
func (r *Routing) OriginOf(c array.Coord) array.Coord {
	o := make(array.Coord, len(c))
	for i := range c {
		cl := int64(64)
		if i < len(r.stride) {
			cl = r.stride[i]
		}
		v := c[i]
		if v < 1 {
			v = 1
		}
		o[i] = ((v-1)/cl)*cl + 1
	}
	return o
}

// ChunkBox is the grid-aligned box of the chunk at origin.
func (r *Routing) ChunkBox(origin array.Coord) array.Box {
	hi := make(array.Coord, len(origin))
	for i := range origin {
		cl := int64(64)
		if i < len(r.stride) {
			cl = r.stride[i]
		}
		hi[i] = origin[i] + cl - 1
	}
	return array.Box{Lo: append(array.Coord(nil), origin...), Hi: hi}
}

// NodeFor implements Scheme: the owner is the override's first node when
// the cell's chunk has been rerouted, the base scheme's owner otherwise.
func (r *Routing) NodeFor(c array.Coord) int {
	r.mu.RLock()
	route, ok := r.overrides[r.OriginOf(c).Key()]
	r.mu.RUnlock()
	if ok && len(route.Nodes) > 0 {
		return route.Nodes[0]
	}
	return r.base.NodeFor(c)
}

// NodesFor implements Replicator: the full replica set of the cell's
// chunk (owner first), or just the base owner when unrouted.
func (r *Routing) NodesFor(c array.Coord) []int {
	r.mu.RLock()
	route, ok := r.overrides[r.OriginOf(c).Key()]
	r.mu.RUnlock()
	if ok && len(route.Nodes) > 0 {
		return append([]int(nil), route.Nodes...)
	}
	return []int{r.base.NodeFor(c)}
}

// SetNodes installs (or updates) the override for the chunk at origin and
// bumps the table version. origin is floored to the grid; nodes must be
// non-empty, in-range, and duplicate-free — owner first. An override whose
// set is exactly the base owner still counts as an override (it pins the
// chunk, e.g. after a migration back home).
func (r *Routing) SetNodes(origin array.Coord, nodes []int) (int64, error) {
	if len(nodes) == 0 {
		return 0, fmt.Errorf("partition: routing override needs at least one node")
	}
	seen := map[int]bool{}
	for _, n := range nodes {
		if n < 0 || n >= r.base.NumNodes() {
			return 0, fmt.Errorf("partition: routing override node %d out of range [0,%d)", n, r.base.NumNodes())
		}
		if seen[n] {
			return 0, fmt.Errorf("partition: routing override repeats node %d", n)
		}
		seen[n] = true
	}
	o := r.OriginOf(origin)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.version++
	r.overrides[o.Key()] = ChunkRoute{Origin: o, Nodes: append([]int(nil), nodes...)}
	return r.version, nil
}

// ClearNodes drops the override for the chunk at origin, returning
// placement to the base scheme, and bumps the version.
func (r *Routing) ClearNodes(origin array.Coord) int64 {
	o := r.OriginOf(origin)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.overrides[o.Key()]; ok {
		delete(r.overrides, o.Key())
		r.version++
	}
	return r.version
}

// Version returns the override-table version (0 = never modified).
func (r *Routing) Version() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Overrides snapshots the override table in deterministic (origin-key)
// order.
func (r *Routing) Overrides() []ChunkRoute {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := make([]string, 0, len(r.overrides))
	for k := range r.overrides {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ChunkRoute, 0, len(keys))
	for _, k := range keys {
		route := r.overrides[k]
		out = append(out, ChunkRoute{
			Origin: append(array.Coord(nil), route.Origin...),
			Nodes:  append([]int(nil), route.Nodes...),
		})
	}
	return out
}

// OverridesIn snapshots the overrides whose chunk boxes intersect box,
// in deterministic order.
func (r *Routing) OverridesIn(box array.Box) []ChunkRoute {
	all := r.Overrides()
	out := all[:0]
	for _, route := range all {
		if _, ok := r.ChunkBox(route.Origin).Intersect(box); ok {
			out = append(out, route)
		}
	}
	return out
}

// NodesForBox implements Pruner: the base scheme's pruned set unioned with
// every override node whose chunk intersects the box — the coordinator
// refines this to per-chunk reader assignments, but the union is already a
// correct (if unspread) visit set.
func (r *Routing) NodesForBox(lo, hi array.Coord) []int {
	var base []int
	if p, ok := r.base.(Pruner); ok {
		base = p.NodesForBox(lo, hi)
	} else {
		base = make([]int, r.base.NumNodes())
		for i := range base {
			base[i] = i
		}
	}
	seen := map[int]bool{}
	for _, n := range base {
		seen[n] = true
	}
	out := append([]int(nil), base...)
	for _, route := range r.OverridesIn(array.Box{Lo: lo, Hi: hi}) {
		for _, n := range route.Nodes {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Ints(out)
	return out
}
