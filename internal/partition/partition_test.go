package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scidb/internal/array"
)

func TestBlockScheme(t *testing.T) {
	b := Block{Nodes: 4, SplitDim: 0, High: 100}
	if b.NodeFor(array.Coord{1, 50}) != 0 {
		t.Error("first slab wrong")
	}
	if b.NodeFor(array.Coord{100, 1}) != 3 {
		t.Error("last slab wrong")
	}
	if b.NodeFor(array.Coord{26, 1}) != 1 {
		t.Error("second slab wrong")
	}
	// Out-of-range coordinates clamp rather than panic.
	if n := b.NodeFor(array.Coord{1000, 1}); n != 3 {
		t.Errorf("clamped high = %d", n)
	}
	if n := b.NodeFor(array.Coord{-5, 1}); n != 0 {
		t.Errorf("clamped low = %d", n)
	}
}

func TestBlockCoversAllNodesProperty(t *testing.T) {
	f := func(v uint16) bool {
		b := Block{Nodes: 7, SplitDim: 0, High: 1000}
		n := b.NodeFor(array.Coord{int64(v%1000) + 1})
		return n >= 0 && n < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashScheme(t *testing.T) {
	h := Hash{Nodes: 4, Dims: []int{0, 1}, ChunkLen: 8}
	// Deterministic.
	a := h.NodeFor(array.Coord{10, 10})
	if h.NodeFor(array.Coord{10, 10}) != a {
		t.Error("hash not deterministic")
	}
	// Chunk-aligned: cells of the same 8x8 chunk land together.
	if h.NodeFor(array.Coord{9, 9}) != h.NodeFor(array.Coord{16, 16}) {
		t.Error("same chunk split across nodes")
	}
	// Roughly balanced across many chunks.
	counts := make([]int, 4)
	for i := int64(1); i <= 64; i++ {
		for j := int64(1); j <= 64; j += 8 {
			counts[h.NodeFor(array.Coord{i, j})]++
		}
	}
	for n, c := range counts {
		if c == 0 {
			t.Errorf("node %d got nothing", n)
		}
	}
}

func TestRangeScheme(t *testing.T) {
	r := Range{SplitDim: 0, Splits: []int64{10, 20, 30}, Nodes: 4}
	cases := map[int64]int{1: 0, 10: 0, 11: 1, 20: 1, 25: 2, 30: 2, 31: 3, 99: 3}
	for v, want := range cases {
		if got := r.NodeFor(array.Coord{v}); got != want {
			t.Errorf("NodeFor(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestEpochScheme(t *testing.T) {
	// First scheme for time < 100, second for time >= 100.
	e := Epoch{
		TimeDim:    0,
		Boundaries: []int64{100},
		Schemes: []Scheme{
			Range{SplitDim: 1, Splits: []int64{50}, Nodes: 2},
			Range{SplitDim: 1, Splits: []int64{10}, Nodes: 2},
		},
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Early epoch: y=30 -> node 0.
	if e.NodeFor(array.Coord{50, 30}) != 0 {
		t.Error("early epoch wrong")
	}
	// Late epoch: y=30 -> node 1 (split moved to 10).
	if e.NodeFor(array.Coord{150, 30}) != 1 {
		t.Error("late epoch wrong")
	}
	if e.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", e.NumNodes())
	}
	bad := Epoch{TimeDim: 0, Boundaries: []int64{5, 5}, Schemes: []Scheme{nil, nil, nil}}
	if err := bad.Validate(); err == nil {
		t.Error("non-ascending boundaries accepted")
	}
	bad2 := Epoch{TimeDim: 0, Boundaries: []int64{5}, Schemes: []Scheme{nil}}
	if err := bad2.Validate(); err == nil {
		t.Error("mismatched schemes/boundaries accepted")
	}
}

// skewedWorkload builds an El Niño-style hotspot: most accesses hit a
// narrow band of the coordinate space.
func skewedWorkload(n int, hotLo, hotHi int64) []SampleAccess {
	rng := rand.New(rand.NewSource(5))
	var w []SampleAccess
	for i := 0; i < n; i++ {
		var y int64
		if rng.Float64() < 0.9 {
			y = hotLo + rng.Int63n(hotHi-hotLo+1)
		} else {
			y = rng.Int63n(1000) + 1
		}
		w = append(w, SampleAccess{Coord: array.Coord{int64(i + 1), y}, Weight: 1})
	}
	return w
}

func TestDesignerBalancesSkew(t *testing.T) {
	w := skewedWorkload(5000, 400, 420)
	fixed := Block{Nodes: 8, SplitDim: 1, High: 1000}
	fixedImb := Imbalance(fixed, w)
	designed, err := Design(w, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	designedImb := Imbalance(designed, w)
	// The paper's claim: fixed partitioning cannot load-balance steerable
	// (skewed) workloads; the designer can.
	if fixedImb < 3 {
		t.Errorf("fixed imbalance = %.2f; hotspot should overload one node", fixedImb)
	}
	if designedImb > 2 {
		t.Errorf("designed imbalance = %.2f; designer should balance", designedImb)
	}
	if designedImb >= fixedImb {
		t.Errorf("designer (%.2f) should beat fixed (%.2f)", designedImb, fixedImb)
	}
}

func TestDesignerUniform(t *testing.T) {
	// Uniform sky-survey scan: fixed partitioning is already fine and the
	// designer should not be much worse.
	var w []SampleAccess
	for i := int64(1); i <= 1000; i++ {
		w = append(w, SampleAccess{Coord: array.Coord{1, i}, Weight: 1})
	}
	fixed := Block{Nodes: 4, SplitDim: 1, High: 1000}
	designed, err := Design(w, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fi := Imbalance(fixed, w); fi > 1.05 {
		t.Errorf("fixed imbalance on uniform = %.3f", fi)
	}
	if di := Imbalance(designed, w); di > 1.2 {
		t.Errorf("designed imbalance on uniform = %.3f", di)
	}
}

func TestDesignErrors(t *testing.T) {
	if _, err := Design(nil, 0, 4); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Design([]SampleAccess{{Coord: array.Coord{1}, Weight: 1}}, 0, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	// More nodes than distinct values still yields a valid scheme.
	r, err := Design([]SampleAccess{{Coord: array.Coord{5}, Weight: 10}}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumNodes() != 3 || len(r.Splits) != 2 {
		t.Errorf("scheme = %+v", r)
	}
	n := r.NodeFor(array.Coord{5})
	if n < 0 || n >= 3 {
		t.Errorf("NodeFor = %d", n)
	}
}

func TestLoadsAndImbalance(t *testing.T) {
	w := []SampleAccess{
		{Coord: array.Coord{1}, Weight: 3},
		{Coord: array.Coord{100}, Weight: 1},
	}
	r := Range{SplitDim: 0, Splits: []int64{50}, Nodes: 2}
	loads := Loads(r, w)
	if loads[0] != 3 || loads[1] != 1 {
		t.Errorf("loads = %v", loads)
	}
	if got := Imbalance(r, w); got != 1.5 {
		t.Errorf("imbalance = %v, want 1.5", got)
	}
	if got := Imbalance(r, nil); got != 1 {
		t.Errorf("imbalance of empty workload = %v, want 1", got)
	}
}

func TestReplicatedPlacement(t *testing.T) {
	// §2.13 PanSTARRS: observations near a partition boundary are placed
	// in every partition within the maximum location error.
	base := Block{Nodes: 4, SplitDim: 0, High: 100} // boundaries at 25/50/75
	r := Replicated{Scheme: base, MaxErr: 2}

	// Far from any boundary: one copy.
	if nodes := r.NodesFor(array.Coord{10, 1}); len(nodes) != 1 || nodes[0] != 0 {
		t.Errorf("interior placement = %v", nodes)
	}
	// On the 25/26 boundary: both neighbors hold it.
	nodes := r.NodesFor(array.Coord{25, 1})
	if len(nodes) != 2 {
		t.Fatalf("boundary placement = %v", nodes)
	}
	has := map[int]bool{}
	for _, n := range nodes {
		has[n] = true
	}
	if !has[0] || !has[1] {
		t.Errorf("boundary nodes = %v, want {0,1}", nodes)
	}
	// Zero error degenerates to the base scheme.
	r0 := Replicated{Scheme: base, MaxErr: 0}
	if nodes := r0.NodesFor(array.Coord{25, 1}); len(nodes) != 1 {
		t.Errorf("zero-error placement = %v", nodes)
	}
	// Primary owner matches the base scheme.
	if r.NodeFor(array.Coord{60, 1}) != base.NodeFor(array.Coord{60, 1}) {
		t.Error("primary owner differs from base")
	}
}

func TestReplicatedUncertainJoinNeedsNoMovement(t *testing.T) {
	// An uncertain spatial join probes every location within the error
	// bound; with replication, whichever node owns the probe location also
	// holds a copy of the observation.
	base := Block{Nodes: 4, SplitDim: 0, High: 100}
	r := Replicated{Scheme: base, MaxErr: 2}
	// The observation's recorded location.
	obs := array.Coord{26, 1}
	copies := map[int]bool{}
	for _, n := range r.NodesFor(obs) {
		copies[n] = true
	}
	// True location might be anywhere within the error bound; every such
	// probe must find a local copy.
	for dx := int64(-2); dx <= 2; dx++ {
		probe := array.Coord{26 + dx, 1}
		if probe[0] < 1 {
			continue
		}
		owner := base.NodeFor(probe)
		if !copies[owner] {
			t.Errorf("probe %v owned by node %d, which holds no copy (copies %v)", probe, owner, copies)
		}
	}
}

func TestReplicationFactor(t *testing.T) {
	base := Block{Nodes: 4, SplitDim: 0, High: 100}
	r := Replicated{Scheme: base, MaxErr: 2}
	var sample []array.Coord
	for i := int64(1); i <= 100; i++ {
		sample = append(sample, array.Coord{i, 1})
	}
	f := r.ReplicationFactor(sample)
	// 3 boundaries x 4 straddling cells on each side -> modest overhead.
	if f <= 1.0 || f > 1.5 {
		t.Errorf("replication factor = %v; want slightly above 1", f)
	}
	if got := r.ReplicationFactor(nil); got != 1 {
		t.Errorf("empty sample factor = %v", got)
	}
}
