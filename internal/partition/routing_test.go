package partition

import (
	"reflect"
	"testing"

	"scidb/internal/array"
)

func testRouting(t *testing.T) *Routing {
	t.Helper()
	return NewRouting(Block{Nodes: 3, SplitDim: 0, High: 192}, 2, []int64{64, 64})
}

func TestRoutingOriginAndChunkBox(t *testing.T) {
	rt := testRouting(t)
	for _, tc := range []struct {
		c    array.Coord
		want array.Coord
	}{
		{array.Coord{1, 1}, array.Coord{1, 1}},
		{array.Coord{64, 64}, array.Coord{1, 1}},
		{array.Coord{65, 1}, array.Coord{65, 1}},
		{array.Coord{130, 70}, array.Coord{129, 65}},
		{array.Coord{0, -5}, array.Coord{1, 1}}, // clamped below the grid
	} {
		if got := rt.OriginOf(tc.c); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("OriginOf(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
	box := rt.ChunkBox(array.Coord{65, 129})
	want := array.Box{Lo: array.Coord{65, 129}, Hi: array.Coord{128, 192}}
	if !reflect.DeepEqual(box, want) {
		t.Errorf("ChunkBox = %v, want %v", box, want)
	}
}

func TestRoutingOverridesAndVersion(t *testing.T) {
	rt := testRouting(t)
	if rt.Version() != 0 {
		t.Fatalf("fresh table version = %d, want 0", rt.Version())
	}
	// Unrouted: base placement, single-node replica set.
	c := array.Coord{100, 10}
	baseOwner := rt.Base().NodeFor(c)
	if got := rt.NodeFor(c); got != baseOwner {
		t.Fatalf("unrouted NodeFor = %d, want base %d", got, baseOwner)
	}
	if got := rt.NodesFor(c); !reflect.DeepEqual(got, []int{baseOwner}) {
		t.Fatalf("unrouted NodesFor = %v, want [%d]", got, baseOwner)
	}
	// Override the chunk: any coordinate inside it re-routes, version bumps.
	v, err := rt.SetNodes(c, []int{2, 0})
	if err != nil || v != 1 {
		t.Fatalf("SetNodes = %d, %v", v, err)
	}
	if got := rt.NodeFor(array.Coord{70, 60}); got != 2 {
		t.Errorf("routed NodeFor = %d, want owner 2", got)
	}
	if got := rt.NodesFor(array.Coord{128, 64}); !reflect.DeepEqual(got, []int{2, 0}) {
		t.Errorf("routed NodesFor = %v, want [2 0]", got)
	}
	// Coordinates outside the chunk are untouched.
	if got := rt.NodeFor(array.Coord{1, 1}); got != rt.Base().NodeFor(array.Coord{1, 1}) {
		t.Errorf("neighbour chunk rerouted: NodeFor = %d", got)
	}
	// Invalid overrides are rejected without a version bump.
	for _, nodes := range [][]int{nil, {3}, {-1}, {1, 1}} {
		if _, err := rt.SetNodes(c, nodes); err == nil {
			t.Errorf("SetNodes(%v) accepted", nodes)
		}
	}
	if rt.Version() != 1 {
		t.Errorf("rejected overrides bumped version to %d", rt.Version())
	}
	// ClearNodes returns the chunk to base placement.
	if v := rt.ClearNodes(c); v != 2 {
		t.Errorf("ClearNodes version = %d, want 2", v)
	}
	if got := rt.NodeFor(c); got != baseOwner {
		t.Errorf("cleared NodeFor = %d, want base %d", got, baseOwner)
	}
	if len(rt.Overrides()) != 0 {
		t.Errorf("overrides remain after clear: %v", rt.Overrides())
	}
}

func TestRoutingOverridesInAndPruning(t *testing.T) {
	rt := testRouting(t)
	if _, err := rt.SetNodes(array.Coord{1, 1}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SetNodes(array.Coord{129, 129}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	in := rt.OverridesIn(array.NewBox(array.Coord{1, 1}, array.Coord{64, 64}))
	if len(in) != 1 || !reflect.DeepEqual(in[0].Origin, array.Coord{1, 1}) {
		t.Fatalf("OverridesIn(first chunk) = %+v", in)
	}
	// Base pruning keeps working, unioned with override nodes: the box below
	// covers only base node 2's slab (rows 129-192), but chunk (1,1) was
	// moved to node 1 — it must not appear, while chunk (129,129)'s replica
	// set must.
	got := rt.NodesForBox(array.Coord{129, 1}, array.Coord{192, 192})
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("NodesForBox = %v, want [0 1 2]", got)
	}
	got = rt.NodesForBox(array.Coord{129, 1}, array.Coord{192, 64})
	if !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("NodesForBox (no overrides in box) = %v, want [2]", got)
	}
}

// TestReplicatedNodesForDeterminism pins the two invariants coordinator
// write fan-out depends on (§2.13 uncertain-location replication shares the
// Replicator interface with routed rebalancing): the replica set for a
// coordinate is deterministic across calls, never contains a duplicate
// node, and always leads with the primary owner.
func TestReplicatedNodesForDeterminism(t *testing.T) {
	r := Replicated{Scheme: Block{Nodes: 4, SplitDim: 0, High: 64}, MaxErr: 2}
	coords := []array.Coord{
		{1, 1}, {16, 5}, {17, 5}, {32, 32}, {33, 1}, {48, 9}, {49, 9}, {64, 64},
	}
	for _, c := range coords {
		first := r.NodesFor(c)
		if len(first) == 0 {
			t.Fatalf("NodesFor(%v) empty", c)
		}
		if first[0] != r.NodeFor(c) {
			t.Errorf("NodesFor(%v)[0] = %d, want primary %d", c, first[0], r.NodeFor(c))
		}
		seen := map[int]bool{}
		for _, n := range first {
			if n < 0 || n >= r.NumNodes() {
				t.Errorf("NodesFor(%v) returned out-of-range node %d", c, n)
			}
			if seen[n] {
				t.Errorf("NodesFor(%v) repeats node %d: %v", c, n, first)
			}
			seen[n] = true
		}
		for i := 0; i < 5; i++ {
			if again := r.NodesFor(c); !reflect.DeepEqual(again, first) {
				t.Fatalf("NodesFor(%v) not deterministic: %v then %v", c, first, again)
			}
		}
	}
	// A boundary-straddling error radius replicates to both neighbours; a
	// deep-interior cell stays single-copy.
	if got := r.NodesFor(array.Coord{17, 5}); len(got) < 2 {
		t.Errorf("boundary cell NodesFor = %v, want both slab owners", got)
	}
	if got := r.NodesFor(array.Coord{8, 8}); len(got) != 1 {
		t.Errorf("interior cell NodesFor = %v, want single copy", got)
	}
	// Zero error radius degenerates to the base scheme exactly.
	r0 := Replicated{Scheme: Block{Nodes: 4, SplitDim: 0, High: 64}}
	for _, c := range coords {
		if got := r0.NodesFor(c); !reflect.DeepEqual(got, []int{r0.NodeFor(c)}) {
			t.Errorf("MaxErr=0 NodesFor(%v) = %v", c, got)
		}
	}
}

// Routing must satisfy the interfaces the coordinator type-asserts.
var (
	_ Scheme     = (*Routing)(nil)
	_ Pruner     = (*Routing)(nil)
	_ Replicator = (*Routing)(nil)
	_ Replicator = Replicated{}
)
