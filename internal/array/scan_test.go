package array

import (
	"math/rand"
	"testing"
)

func scanSchema(chunk int64) *Schema {
	return &Schema{
		Name: "scan",
		Dims: []Dimension{
			{Name: "x", High: 20, ChunkLen: chunk},
			{Name: "y", High: 20, ChunkLen: chunk},
		},
		Attrs: []Attribute{
			{Name: "a", Type: TFloat64},
			{Name: "b", Type: TFloat64},
		},
	}
}

func TestScanFloatsMatchesIterBox(t *testing.T) {
	for _, chunk := range []int64{0, 7, 20} {
		a := MustNew(scanSchema(chunk))
		rng := rand.New(rand.NewSource(13))
		// Sparse fill: ~60% of cells.
		IterBox(WholeBox(a.Schema), func(c Coord) bool {
			if rng.Float64() < 0.6 {
				_ = a.Set(c, Cell{Float64(float64(c[0]*100 + c[1])), Float64(-1)})
			}
			return true
		})
		boxes := []Box{
			NewBox(Coord{1, 1}, Coord{20, 20}),
			NewBox(Coord{3, 5}, Coord{11, 9}),
			NewBox(Coord{7, 7}, Coord{7, 7}),
			NewBox(Coord{19, 19}, Coord{25, 25}), // clipped at bounds
		}
		for _, q := range boxes {
			want := map[string]float64{}
			a.IterBoxReuse(q, func(c Coord, cell Cell) bool {
				want[c.Key()] = cell[0].Float
				return true
			})
			got := map[string]float64{}
			a.ScanFloats(q, 0, func(c Coord, v float64) bool {
				got[c.Key()] = v
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("chunk=%d box=%v: ScanFloats saw %d cells, IterBoxReuse %d",
					chunk, q, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("chunk=%d box=%v cell %s: %v != %v", chunk, q, k, got[k], v)
				}
			}
		}
	}
}

func TestScanFloatsSecondAttribute(t *testing.T) {
	a := MustNew(scanSchema(8))
	_ = a.Set(Coord{2, 3}, Cell{Float64(1), Float64(42)})
	var got float64
	a.ScanFloats(WholeBox(a.Schema), 1, func(_ Coord, v float64) bool {
		got = v
		return true
	})
	if got != 42 {
		t.Errorf("attr 1 scan = %v", got)
	}
}

func TestScanFloatsEarlyStop(t *testing.T) {
	a := MustNew(scanSchema(8))
	_ = a.Fill(func(Coord) Cell { return Cell{Float64(1), Float64(2)} })
	n := 0
	a.ScanFloats(WholeBox(a.Schema), 0, func(Coord, float64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestScanFloats1D(t *testing.T) {
	s := &Schema{
		Name:  "v",
		Dims:  []Dimension{{Name: "i", High: 10, ChunkLen: 4}},
		Attrs: []Attribute{{Name: "a", Type: TFloat64}},
	}
	a := MustNew(s)
	for i := int64(1); i <= 10; i++ {
		_ = a.Set(Coord{i}, Cell{Float64(float64(i))})
	}
	var sum float64
	a.ScanFloats(NewBox(Coord{3}, Coord{7}), 0, func(_ Coord, v float64) bool {
		sum += v
		return true
	})
	if sum != 3+4+5+6+7 {
		t.Errorf("1-D box sum = %v", sum)
	}
}

func TestScanFloatsNonFloatColumn(t *testing.T) {
	s := &Schema{
		Name:  "i",
		Dims:  []Dimension{{Name: "i", High: 4}},
		Attrs: []Attribute{{Name: "n", Type: TInt64}},
	}
	a := MustNew(s)
	_ = a.Set(Coord{1}, Cell{Int64(5)})
	called := false
	a.ScanFloats(WholeBox(a.Schema), 0, func(Coord, float64) bool {
		called = true
		return true
	})
	if called {
		t.Error("ScanFloats visited an int column")
	}
}
