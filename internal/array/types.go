// Package array implements the SciDB array data model from CIDR 2009 §2.1:
// multi-dimensional nested arrays whose dimensions are named, contiguous,
// 1-based integer ranges and whose cells hold records of scalar values
// and/or nested arrays. Arrays are stored as rectangular columnar chunks
// with presence and null bitmaps.
package array

import (
	"fmt"
	"math"
)

// Type identifies the scalar or nested type of an attribute value.
type Type uint8

// Supported value types. TArray marks a nested-array attribute whose element
// schema is carried by Attribute.Nested.
const (
	TInvalid Type = iota
	TInt64
	TFloat64
	TString
	TBool
	TArray
)

// String returns the AQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TInt64:
		return "int64"
	case TFloat64:
		return "float"
	case TString:
		return "string"
	case TBool:
		return "bool"
	case TArray:
		return "array"
	default:
		return "invalid"
	}
}

// ParseType maps an AQL type name to a Type. It accepts the aliases used in
// the paper's examples ("float", "int").
func ParseType(s string) (Type, error) {
	switch s {
	case "int64", "int", "integer":
		return TInt64, nil
	case "float", "float64", "double":
		return TFloat64, nil
	case "string", "text":
		return TString, nil
	case "bool", "boolean":
		return TBool, nil
	case "array":
		return TArray, nil
	}
	return TInvalid, fmt.Errorf("array: unknown type %q", s)
}

// Value is one attribute value of one cell. A Value may be NULL (the paper's
// Filter and Cjoin produce NULL cells), and may carry an uncertainty standard
// deviation when the attribute is declared "uncertain x" (§2.13).
type Value struct {
	Type  Type
	Null  bool
	Int   int64
	Float float64
	Str   string
	Bool  bool
	Arr   *Array
	Sigma float64 // standard deviation ("error bar"); 0 for exact values
}

// NullValue returns a NULL value of type t.
func NullValue(t Type) Value { return Value{Type: t, Null: true} }

// Int64 returns an int64 value.
func Int64(v int64) Value { return Value{Type: TInt64, Int: v} }

// Float64 returns a float64 value.
func Float64(v float64) Value { return Value{Type: TFloat64, Float: v} }

// UncertainFloat returns a float64 value carrying an error bar (§2.13).
func UncertainFloat(v, sigma float64) Value {
	return Value{Type: TFloat64, Float: v, Sigma: sigma}
}

// String64 returns a string value. (Named to avoid colliding with the
// fmt.Stringer method.)
func String64(v string) Value { return Value{Type: TString, Str: v} }

// Bool64 returns a bool value.
func Bool64(v bool) Value { return Value{Type: TBool, Bool: v} }

// Nested returns a nested-array value.
func Nested(a *Array) Value { return Value{Type: TArray, Arr: a} }

// AsFloat converts a numeric value to float64. NULLs convert to NaN.
func (v Value) AsFloat() float64 {
	if v.Null {
		return math.NaN()
	}
	switch v.Type {
	case TInt64:
		return float64(v.Int)
	case TFloat64:
		return v.Float
	case TBool:
		if v.Bool {
			return 1
		}
		return 0
	}
	return math.NaN()
}

// AsInt converts a numeric value to int64 (truncating floats). NULLs are 0.
func (v Value) AsInt() int64 {
	if v.Null {
		return 0
	}
	switch v.Type {
	case TInt64:
		return v.Int
	case TFloat64:
		return int64(v.Float)
	case TBool:
		if v.Bool {
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports whether two values are equal. NULL equals nothing, matching
// SQL/paper join semantics. Nested arrays compare by pointer identity.
func (v Value) Equal(o Value) bool {
	if v.Null || o.Null {
		return false
	}
	if v.Type != o.Type {
		// Permit cross numeric comparison.
		if isNumeric(v.Type) && isNumeric(o.Type) {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.Type {
	case TInt64:
		return v.Int == o.Int
	case TFloat64:
		return v.Float == o.Float
	case TString:
		return v.Str == o.Str
	case TBool:
		return v.Bool == o.Bool
	case TArray:
		return v.Arr == o.Arr
	}
	return false
}

// Compare returns -1, 0, or +1 ordering v against o. NULLs sort first.
func (v Value) Compare(o Value) int {
	switch {
	case v.Null && o.Null:
		return 0
	case v.Null:
		return -1
	case o.Null:
		return 1
	}
	if isNumeric(v.Type) && isNumeric(o.Type) {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.Type == TString && o.Type == TString {
		switch {
		case v.Str < o.Str:
			return -1
		case v.Str > o.Str:
			return 1
		}
		return 0
	}
	return 0
}

func isNumeric(t Type) bool { return t == TInt64 || t == TFloat64 || t == TBool }

// String renders the value for display (used by the figure reproductions).
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case TInt64:
		if v.Sigma != 0 {
			return fmt.Sprintf("%d±%g", v.Int, v.Sigma)
		}
		return fmt.Sprintf("%d", v.Int)
	case TFloat64:
		if v.Sigma != 0 {
			return fmt.Sprintf("%g±%g", v.Float, v.Sigma)
		}
		return fmt.Sprintf("%g", v.Float)
	case TString:
		return v.Str
	case TBool:
		return fmt.Sprintf("%t", v.Bool)
	case TArray:
		if v.Arr == nil {
			return "<nil array>"
		}
		return fmt.Sprintf("<array %s>", v.Arr.Schema.Name)
	}
	return "?"
}

// Cell is one cell's record: one Value per attribute, in schema order.
type Cell []Value

// Clone deep-copies the cell (nested arrays are shared).
func (c Cell) Clone() Cell {
	out := make(Cell, len(c))
	copy(out, c)
	return out
}
