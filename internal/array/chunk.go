package array

import "fmt"

// Column holds one attribute's values for every cell slot of a chunk, as a
// typed vector plus a null bitmap. Uncertain attributes carry a parallel
// Sigma vector; when every cell shares one error bar the chunk stores a
// single SharedSigma instead ("arrays with the same error bounds for all
// values will require negligible extra space", §2.13).
type Column struct {
	Type        Type
	Ints        []int64
	Floats      []float64
	Strs        []string
	Bools       []bool
	Arrs        []*Array
	Nulls       *Bitmap
	Sigma       []float64
	SharedSigma float64
	HasShared   bool

	// Zone and Enc are advisory views attached by the storage decoder:
	// Zone summarizes the present, non-null values for chunk skipping and
	// Enc retains the encoded structure (RLE runs, dictionary codes) for
	// run-at-a-time execution. Both describe the column only while it is
	// unmodified — Set and CopyFrom drop them.
	Zone *ZoneMap
	Enc  *ColEnc
}

// NewColumn allocates a column of n slots for attribute a.
func NewColumn(a Attribute, n int64) *Column {
	c := &Column{Type: a.Type, Nulls: NewBitmap(n)}
	switch a.Type {
	case TInt64:
		c.Ints = make([]int64, n)
	case TFloat64:
		c.Floats = make([]float64, n)
	case TString:
		c.Strs = make([]string, n)
	case TBool:
		c.Bools = make([]bool, n)
	case TArray:
		c.Arrs = make([]*Array, n)
	}
	if a.Uncertain && a.Type == TFloat64 {
		c.Sigma = make([]float64, n)
	}
	return c
}

// Get returns the value at slot i.
func (c *Column) Get(i int64) Value {
	v := Value{Type: c.Type}
	if c.Nulls.Get(i) {
		v.Null = true
		return v
	}
	switch c.Type {
	case TInt64:
		v.Int = c.Ints[i]
	case TFloat64:
		v.Float = c.Floats[i]
	case TString:
		v.Str = c.Strs[i]
	case TBool:
		v.Bool = c.Bools[i]
	case TArray:
		v.Arr = c.Arrs[i]
	}
	switch {
	case c.HasShared:
		v.Sigma = c.SharedSigma
	case c.Sigma != nil:
		v.Sigma = c.Sigma[i]
	}
	return v
}

// Set stores the value at slot i, converting numerics as needed.
func (c *Column) Set(i int64, v Value) {
	c.Zone, c.Enc = nil, nil
	if v.Null {
		c.Nulls.Set(i)
		return
	}
	c.Nulls.Clear(i)
	switch c.Type {
	case TInt64:
		c.Ints[i] = v.AsInt()
	case TFloat64:
		c.Floats[i] = v.AsFloat()
	case TString:
		c.Strs[i] = v.Str
	case TBool:
		c.Bools[i] = v.Bool
	case TArray:
		c.Arrs[i] = v.Arr
	}
	if c.Sigma != nil {
		c.Sigma[i] = v.Sigma
	}
}

// CopyFrom copies slot src of o — a column of the same type — into slot dst
// of c, preserving nulls and error bars. It is the columnar transfer
// primitive the chunk-parallel operators use instead of boxing each cell
// into a Value and back.
func (c *Column) CopyFrom(o *Column, dst, src int64) {
	c.Zone, c.Enc = nil, nil
	if o.Nulls.Get(src) {
		c.Nulls.Set(dst)
		return
	}
	c.Nulls.Clear(dst)
	switch c.Type {
	case TInt64:
		c.Ints[dst] = o.Ints[src]
	case TFloat64:
		c.Floats[dst] = o.Floats[src]
	case TString:
		c.Strs[dst] = o.Strs[src]
	case TBool:
		c.Bools[dst] = o.Bools[src]
	case TArray:
		c.Arrs[dst] = o.Arrs[src]
	}
	if c.Sigma != nil {
		switch {
		case o.HasShared:
			c.Sigma[dst] = o.SharedSigma
		case o.Sigma != nil:
			c.Sigma[dst] = o.Sigma[src]
		default:
			c.Sigma[dst] = 0
		}
	}
}

// Len returns the slot count.
func (c *Column) Len() int64 { return c.Nulls.Len() }

// Clone deep-copies the column (nested arrays are shared).
func (c *Column) Clone() *Column {
	out := &Column{Type: c.Type, Nulls: c.Nulls.Clone(), SharedSigma: c.SharedSigma, HasShared: c.HasShared,
		Zone: c.Zone, Enc: c.Enc} // views stay valid for an identical copy
	out.Ints = append([]int64(nil), c.Ints...)
	out.Floats = append([]float64(nil), c.Floats...)
	out.Strs = append([]string(nil), c.Strs...)
	out.Bools = append([]bool(nil), c.Bools...)
	out.Arrs = append([]*Array(nil), c.Arrs...)
	out.Sigma = append([]float64(nil), c.Sigma...)
	return out
}

// Chunk is a rectangular, columnar slab of cells: the in-memory form of the
// paper's storage bucket (§2.8) and the unit shipped between grid nodes.
// A cell slot may be absent (presence bit clear): Subsample results, sparse
// loads, and Cjoin misses all use absence.
type Chunk struct {
	Origin  Coord   // coordinate of the first cell
	Shape   []int64 // extent per dimension
	Cols    []*Column
	Present *Bitmap
}

// NewChunk allocates an empty (all-absent) chunk for the given schema region.
func NewChunk(s *Schema, origin Coord, shape []int64) *Chunk {
	n := int64(1)
	for _, e := range shape {
		n *= e
	}
	ch := &Chunk{Origin: origin.Clone(), Shape: append([]int64(nil), shape...), Present: NewBitmap(n)}
	ch.Cols = make([]*Column, len(s.Attrs))
	for i, a := range s.Attrs {
		ch.Cols[i] = NewColumn(a, n)
	}
	return ch
}

// Box returns the chunk's coordinate region.
func (ch *Chunk) Box() Box {
	hi := make(Coord, len(ch.Origin))
	for i := range hi {
		hi[i] = ch.Origin[i] + ch.Shape[i] - 1
	}
	return Box{Lo: ch.Origin.Clone(), Hi: hi}
}

// Slots returns the number of cell slots.
func (ch *Chunk) Slots() int64 { return ch.Present.Len() }

// CellsPresent returns the number of present cells.
func (ch *Chunk) CellsPresent() int64 { return ch.Present.Count() }

// Index converts a coordinate to the chunk-local slot index. The caller
// must ensure the coordinate is inside the chunk.
func (ch *Chunk) Index(c Coord) int64 { return RowMajorIndex(ch.Origin, ch.Shape, c) }

// Get returns the cell at the coordinate and whether it is present.
func (ch *Chunk) Get(c Coord) (Cell, bool) {
	i := ch.Index(c)
	if !ch.Present.Get(i) {
		return nil, false
	}
	cell := make(Cell, len(ch.Cols))
	for a, col := range ch.Cols {
		cell[a] = col.Get(i)
	}
	return cell, true
}

// Set writes the cell at the coordinate, marking it present.
func (ch *Chunk) Set(c Coord, cell Cell) error {
	if len(cell) != len(ch.Cols) {
		return fmt.Errorf("array: cell has %d values, chunk has %d attributes", len(cell), len(ch.Cols))
	}
	i := ch.Index(c)
	ch.Present.Set(i)
	for a, col := range ch.Cols {
		col.Set(i, cell[a])
	}
	return nil
}

// Erase marks the cell absent.
func (ch *Chunk) Erase(c Coord) { ch.Present.Clear(ch.Index(c)) }

// Clone deep-copies the chunk.
func (ch *Chunk) Clone() *Chunk {
	out := &Chunk{
		Origin:  ch.Origin.Clone(),
		Shape:   append([]int64(nil), ch.Shape...),
		Present: ch.Present.Clone(),
	}
	out.Cols = make([]*Column, len(ch.Cols))
	for i, c := range ch.Cols {
		out.Cols[i] = c.Clone()
	}
	return out
}

// ByteSize estimates the in-memory payload size of the chunk, used by the
// storage manager's memory accounting and the version-space experiments.
func (ch *Chunk) ByteSize() int64 {
	n := int64(len(ch.Present.Words()) * 8)
	for _, c := range ch.Cols {
		n += int64(len(c.Ints))*8 + int64(len(c.Floats))*8 + int64(len(c.Bools)) + int64(len(c.Sigma))*8
		for _, s := range c.Strs {
			n += int64(len(s)) + 16
		}
		n += int64(len(c.Arrs)) * 8
		n += int64(len(c.Nulls.Words()) * 8)
	}
	return n
}
