package array

import (
	"math/rand"
	"testing"
)

// TestModelBasedArrayOps drives a chunked array with a long random sequence
// of Set/Erase/At/Count operations and checks every observation against a
// plain map model. This is the core data structure the whole engine stands
// on; the model test catches chunk-boundary, cache, and bitmap bugs that
// example-based tests miss.
func TestModelBasedArrayOps(t *testing.T) {
	for _, chunkLen := range []int64{0, 3, 7, 16} {
		chunkLen := chunkLen
		s := &Schema{
			Name: "model",
			Dims: []Dimension{
				{Name: "x", High: 16, ChunkLen: chunkLen},
				{Name: "y", High: 16, ChunkLen: chunkLen},
			},
			Attrs: []Attribute{{Name: "v", Type: TInt64}},
		}
		a := MustNew(s)
		model := map[[2]int64]int64{}
		rng := rand.New(rand.NewSource(chunkLen + 100))
		for step := 0; step < 5000; step++ {
			x, y := rng.Int63n(16)+1, rng.Int63n(16)+1
			c := Coord{x, y}
			switch rng.Intn(4) {
			case 0, 1: // set
				v := rng.Int63n(1000)
				if err := a.Set(c, Cell{Int64(v)}); err != nil {
					t.Fatalf("chunk=%d step %d: set: %v", chunkLen, step, err)
				}
				model[[2]int64{x, y}] = v
			case 2: // erase
				a.Erase(c)
				delete(model, [2]int64{x, y})
			case 3: // read
				cell, ok := a.At(c)
				mv, mok := model[[2]int64{x, y}]
				if ok != mok {
					t.Fatalf("chunk=%d step %d: At%v present=%v, model=%v", chunkLen, step, c, ok, mok)
				}
				if ok && cell[0].Int != mv {
					t.Fatalf("chunk=%d step %d: At%v = %d, model %d", chunkLen, step, c, cell[0].Int, mv)
				}
			}
			if step%500 == 499 {
				if got := a.Count(); got != int64(len(model)) {
					t.Fatalf("chunk=%d step %d: Count = %d, model %d", chunkLen, step, got, len(model))
				}
			}
		}
		// Full iteration agrees with the model.
		seen := map[[2]int64]int64{}
		a.Iter(func(c Coord, cell Cell) bool {
			seen[[2]int64{c[0], c[1]}] = cell[0].Int
			return true
		})
		if len(seen) != len(model) {
			t.Fatalf("chunk=%d: Iter saw %d cells, model has %d", chunkLen, len(seen), len(model))
		}
		for k, v := range model {
			if seen[k] != v {
				t.Fatalf("chunk=%d: cell %v = %d, model %d", chunkLen, k, seen[k], v)
			}
		}
		// IterReuse and ScanFloats-style box reads agree too.
		var reuseCount int
		a.IterReuse(func(Coord, Cell) bool { reuseCount++; return true })
		if int64(reuseCount) != int64(len(model)) {
			t.Fatalf("chunk=%d: IterReuse saw %d cells", chunkLen, reuseCount)
		}
	}
}
