package array

import (
	"fmt"
	"strings"
)

// Unbounded is the High value of a dimension declared with "*" (§2.1):
// the array may grow without restriction in that dimension and the schema
// tracks only a high-water mark.
const Unbounded int64 = -1

// HistoryDim is the reserved name of the history dimension that every
// updatable array acquires (§2.5). The version subsystem appends it
// automatically.
const HistoryDim = "history"

// Dimension is one named, integer-valued dimension. Per the paper, each
// dimension has contiguous integer values between 1 and N (the high-water
// mark). An unbounded dimension has High == Unbounded and grows as cells
// are written.
type Dimension struct {
	Name string
	High int64 // high-water mark, or Unbounded
	// ChunkLen is the storage stride in this dimension (§2.8 buckets are
	// "defined by a stride in each dimension"). Zero means one chunk spans
	// the whole dimension.
	ChunkLen int64
}

// Bounded reports whether the dimension has a fixed high-water mark.
func (d Dimension) Bounded() bool { return d.High != Unbounded }

// Attribute is one named value in each cell's record. An attribute is a
// scalar or a nested array (Type == TArray, element schema in Nested).
// Uncertain marks the paper's "uncertain x" declaration (§2.13).
type Attribute struct {
	Name      string
	Type      Type
	Uncertain bool
	Nested    *Schema
}

// Schema describes an array type: named dimensions plus the record type of
// each cell. It corresponds to the paper's
//
//	define ArrayType ({name = Type-1}) ({dname})
//
// statement; a physical array is a Schema plus chunk data, created with
// concrete high-water marks.
type Schema struct {
	Name      string
	Dims      []Dimension
	Attrs     []Attribute
	Updatable bool // declared "define updatable ..." (§2.5)
}

// NDims returns the dimensionality.
func (s *Schema) NDims() int { return len(s.Dims) }

// NAttrs returns the number of attributes per cell.
func (s *Schema) NAttrs() int { return len(s.Attrs) }

// DimIndex returns the position of the named dimension, or -1.
func (s *Schema) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural invariants: nonempty dims and attrs, unique
// names, positive bounds, valid types.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("array: schema has no name")
	}
	if len(s.Dims) == 0 {
		return fmt.Errorf("array %s: at least one dimension required", s.Name)
	}
	if len(s.Attrs) == 0 {
		return fmt.Errorf("array %s: at least one attribute required", s.Name)
	}
	seen := map[string]bool{}
	for _, d := range s.Dims {
		if d.Name == "" {
			return fmt.Errorf("array %s: unnamed dimension", s.Name)
		}
		if seen[d.Name] {
			return fmt.Errorf("array %s: duplicate name %q", s.Name, d.Name)
		}
		seen[d.Name] = true
		if d.High != Unbounded && d.High < 1 {
			return fmt.Errorf("array %s: dimension %s has high-water mark %d < 1", s.Name, d.Name, d.High)
		}
		if d.ChunkLen < 0 {
			return fmt.Errorf("array %s: dimension %s has negative chunk length", s.Name, d.Name)
		}
	}
	for _, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("array %s: unnamed attribute", s.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("array %s: duplicate name %q", s.Name, a.Name)
		}
		seen[a.Name] = true
		switch a.Type {
		case TInt64, TFloat64, TString, TBool:
		case TArray:
			if a.Nested == nil {
				return fmt.Errorf("array %s: nested attribute %s has no element schema", s.Name, a.Name)
			}
			if err := a.Nested.Validate(); err != nil {
				return fmt.Errorf("array %s: nested attribute %s: %w", s.Name, a.Name, err)
			}
		default:
			return fmt.Errorf("array %s: attribute %s has invalid type", s.Name, a.Name)
		}
	}
	return nil
}

// Clone deep-copies the schema.
func (s *Schema) Clone() *Schema {
	out := &Schema{Name: s.Name, Updatable: s.Updatable}
	out.Dims = append([]Dimension(nil), s.Dims...)
	out.Attrs = make([]Attribute, len(s.Attrs))
	for i, a := range s.Attrs {
		out.Attrs[i] = a
		if a.Nested != nil {
			out.Attrs[i].Nested = a.Nested.Clone()
		}
	}
	return out
}

// SameShape reports whether two schemas have identical dimension bounds
// (names may differ).
func (s *Schema) SameShape(o *Schema) bool {
	if len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		if s.Dims[i].High != o.Dims[i].High {
			return false
		}
	}
	return true
}

// String renders the schema in the paper's define/create syntax, e.g.
//
//	Remote (s1 = float, s2 = float, s3 = float) [I=1024, J=1024]
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteString(" (")
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = ", a.Name)
		if a.Uncertain {
			b.WriteString("uncertain ")
		}
		if a.Type == TArray {
			b.WriteString(a.Nested.String())
		} else {
			b.WriteString(a.Type.String())
		}
	}
	b.WriteString(") [")
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		if d.High == Unbounded {
			fmt.Fprintf(&b, "%s=*", d.Name)
		} else {
			fmt.Fprintf(&b, "%s=%d", d.Name, d.High)
		}
	}
	b.WriteString("]")
	return b.String()
}

// Bounds returns the per-dimension high-water marks.
func (s *Schema) Bounds() []int64 {
	out := make([]int64, len(s.Dims))
	for i, d := range s.Dims {
		out[i] = d.High
	}
	return out
}

// CellCount returns the total number of addressable cells, or -1 if any
// dimension is unbounded.
func (s *Schema) CellCount() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		if d.High == Unbounded {
			return -1
		}
		n *= d.High
	}
	return n
}
