package array

import (
	"fmt"
	"strconv"
)

// Coord is a cell address: one 1-based integer per dimension.
type Coord []int64

// Clone copies the coordinate.
func (c Coord) Clone() Coord { return append(Coord(nil), c...) }

// Equal reports coordinate equality.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Key returns a map key for the coordinate. It is allocation-light
// (strconv into a small buffer), as it sits on the Set/At hot path.
func (c Coord) Key() string {
	buf := make([]byte, 0, 12*len(c))
	for i, v := range c {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, v, 36)
	}
	return string(buf)
}

// String renders the coordinate in the paper's bracket syntax, e.g. [7, 8].
func (c Coord) String() string {
	s := "["
	for i, v := range c {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d", v)
	}
	return s + "]"
}

// Box is an axis-aligned rectangular coordinate region, inclusive on both
// ends. Storage buckets (§2.8) and partitions (§2.7) are boxes.
type Box struct {
	Lo, Hi Coord
}

// NewBox builds a box and normalizes degenerate input.
func NewBox(lo, hi Coord) Box { return Box{Lo: lo.Clone(), Hi: hi.Clone()} }

// Contains reports whether the coordinate lies inside the box.
func (b Box) Contains(c Coord) bool {
	if len(c) != len(b.Lo) {
		return false
	}
	for i := range c {
		if c[i] < b.Lo[i] || c[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether two boxes overlap.
func (b Box) Intersects(o Box) bool {
	if len(b.Lo) != len(o.Lo) {
		return false
	}
	for i := range b.Lo {
		if b.Hi[i] < o.Lo[i] || o.Hi[i] < b.Lo[i] {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of two boxes and whether it is nonempty.
func (b Box) Intersect(o Box) (Box, bool) {
	if !b.Intersects(o) {
		return Box{}, false
	}
	lo := make(Coord, len(b.Lo))
	hi := make(Coord, len(b.Hi))
	for i := range b.Lo {
		lo[i] = max64(b.Lo[i], o.Lo[i])
		hi[i] = min64(b.Hi[i], o.Hi[i])
	}
	return Box{Lo: lo, Hi: hi}, true
}

// Shape returns the per-dimension extent of the box.
func (b Box) Shape() []int64 {
	out := make([]int64, len(b.Lo))
	for i := range b.Lo {
		out[i] = b.Hi[i] - b.Lo[i] + 1
	}
	return out
}

// Cells returns the number of cells in the box.
func (b Box) Cells() int64 {
	n := int64(1)
	for i := range b.Lo {
		n *= b.Hi[i] - b.Lo[i] + 1
	}
	return n
}

// Union returns the smallest box covering both.
func (b Box) Union(o Box) Box {
	lo := make(Coord, len(b.Lo))
	hi := make(Coord, len(b.Hi))
	for i := range b.Lo {
		lo[i] = min64(b.Lo[i], o.Lo[i])
		hi[i] = max64(b.Hi[i], o.Hi[i])
	}
	return Box{Lo: lo, Hi: hi}
}

// String renders the box as [lo..hi] per dimension.
func (b Box) String() string {
	s := "["
	for i := range b.Lo {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d:%d", b.Lo[i], b.Hi[i])
	}
	return s + "]"
}

// WholeBox returns the box spanning an entire bounded schema.
func WholeBox(s *Schema) Box {
	lo := make(Coord, len(s.Dims))
	hi := make(Coord, len(s.Dims))
	for i, d := range s.Dims {
		lo[i] = 1
		hi[i] = d.High
	}
	return Box{Lo: lo, Hi: hi}
}

// RowMajorIndex converts a coordinate within a box of the given origin and
// shape to a linear index, iterating the last dimension fastest.
func RowMajorIndex(origin Coord, shape []int64, c Coord) int64 {
	idx := int64(0)
	for i := range shape {
		idx = idx*shape[i] + (c[i] - origin[i])
	}
	return idx
}

// CoordAt is the inverse of RowMajorIndex.
func CoordAt(origin Coord, shape []int64, idx int64) Coord {
	c := make(Coord, len(shape))
	for i := len(shape) - 1; i >= 0; i-- {
		c[i] = origin[i] + idx%shape[i]
		idx /= shape[i]
	}
	return c
}

// IterBox calls fn for every coordinate in the box in row-major order
// (last dimension fastest). fn may return false to stop early.
func IterBox(b Box, fn func(Coord) bool) {
	n := len(b.Lo)
	c := b.Lo.Clone()
	for {
		if !fn(c) {
			return
		}
		i := n - 1
		for i >= 0 {
			c[i]++
			if c[i] <= b.Hi[i] {
				break
			}
			c[i] = b.Lo[i]
			i--
		}
		if i < 0 {
			return
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
