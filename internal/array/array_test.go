package array

import (
	"math"
	"testing"
	"testing/quick"
)

// remoteSchema is the paper's running example:
//
//	define Remote (s1 = float, s2 = float, s3 = float) (I, J)
//	create My_remote as Remote [1024,1024]
func remoteSchema(hi int64) *Schema {
	return &Schema{
		Name: "My_remote",
		Dims: []Dimension{{Name: "I", High: hi}, {Name: "J", High: hi}},
		Attrs: []Attribute{
			{Name: "s1", Type: TFloat64},
			{Name: "s2", Type: TFloat64},
			{Name: "s3", Type: TFloat64},
		},
	}
}

func TestSchemaValidate(t *testing.T) {
	s := remoteSchema(16)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Schema)
	}{
		{"no name", func(s *Schema) { s.Name = "" }},
		{"no dims", func(s *Schema) { s.Dims = nil }},
		{"no attrs", func(s *Schema) { s.Attrs = nil }},
		{"dup dim", func(s *Schema) { s.Dims[1].Name = "I" }},
		{"dup attr", func(s *Schema) { s.Attrs[1].Name = "s1" }},
		{"dim/attr clash", func(s *Schema) { s.Attrs[0].Name = "I" }},
		{"zero bound", func(s *Schema) { s.Dims[0].High = 0 }},
		{"nested missing schema", func(s *Schema) { s.Attrs[0] = Attribute{Name: "n", Type: TArray} }},
		{"bad type", func(s *Schema) { s.Attrs[0].Type = TInvalid }},
	}
	for _, c := range cases {
		bad := remoteSchema(16)
		c.mut(bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: invalid schema accepted", c.name)
		}
	}
}

func TestSchemaString(t *testing.T) {
	s := remoteSchema(1024)
	got := s.String()
	want := "My_remote (s1 = float, s2 = float, s3 = float) [I=1024, J=1024]"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestUnboundedSchema(t *testing.T) {
	// create My_remote_2 as Remote [*, *]
	s := &Schema{
		Name:  "My_remote_2",
		Dims:  []Dimension{{Name: "I", High: Unbounded}, {Name: "J", High: Unbounded}},
		Attrs: []Attribute{{Name: "s1", Type: TFloat64}},
	}
	a, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if s.CellCount() != -1 {
		t.Errorf("unbounded CellCount = %d, want -1", s.CellCount())
	}
	// Unbounded arrays grow without restriction.
	if err := a.Set(Coord{500, 3}, Cell{Float64(1.5)}); err != nil {
		t.Fatal(err)
	}
	if a.Hwm(0) != 500 || a.Hwm(1) != 3 {
		t.Errorf("hwm = %d,%d want 500,3", a.Hwm(0), a.Hwm(1))
	}
	cell, ok := a.At(Coord{500, 3})
	if !ok || cell[0].Float != 1.5 {
		t.Errorf("At(500,3) = %v,%v", cell, ok)
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	a := MustNew(remoteSchema(8))
	want := Cell{Float64(1), Float64(2), Float64(3)}
	if err := a.Set(Coord{7, 8}, want); err != nil {
		t.Fatal(err)
	}
	got, ok := a.At(Coord{7, 8})
	if !ok {
		t.Fatal("cell absent after Set")
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("attr %d = %v, want %v", i, got[i], want[i])
		}
	}
	// A[7,8].x style access: attribute by index.
	if idx := a.Schema.AttrIndex("s2"); got[idx].Float != 2 {
		t.Errorf("A[7,8].s2 = %v, want 2", got[idx])
	}
}

func TestBoundsChecks(t *testing.T) {
	a := MustNew(remoteSchema(8))
	if err := a.Set(Coord{0, 1}, Cell{Float64(0), Float64(0), Float64(0)}); err == nil {
		t.Error("coordinate 0 accepted; dimensions start at 1")
	}
	if err := a.Set(Coord{9, 1}, Cell{Float64(0), Float64(0), Float64(0)}); err == nil {
		t.Error("coordinate above high-water mark accepted")
	}
	if err := a.Set(Coord{1}, Cell{Float64(0), Float64(0), Float64(0)}); err == nil {
		t.Error("wrong dimensionality accepted")
	}
	if err := a.Set(Coord{1, 1}, Cell{Float64(0)}); err == nil {
		t.Error("wrong attribute count accepted")
	}
}

func TestExists(t *testing.T) {
	a := MustNew(remoteSchema(8))
	if a.Exists(Coord{7, 7}) {
		t.Error("Exists?[A,7,7] true before write")
	}
	_ = a.Set(Coord{7, 7}, Cell{Float64(1), Float64(1), Float64(1)})
	if !a.Exists(Coord{7, 7}) {
		t.Error("Exists?[A,7,7] false after write")
	}
	a.Erase(Coord{7, 7})
	if a.Exists(Coord{7, 7}) {
		t.Error("Exists?[A,7,7] true after erase")
	}
}

func TestNullCells(t *testing.T) {
	a := MustNew(remoteSchema(4))
	_ = a.Set(Coord{1, 1}, Cell{NullValue(TFloat64), Float64(2), NullValue(TFloat64)})
	cell, ok := a.At(Coord{1, 1})
	if !ok {
		t.Fatal("cell absent")
	}
	if !cell[0].Null || cell[1].Null || !cell[2].Null {
		t.Errorf("null pattern wrong: %v", cell)
	}
	if !math.IsNaN(cell[0].AsFloat()) {
		t.Error("NULL AsFloat should be NaN")
	}
}

func TestNestedArrayAttribute(t *testing.T) {
	// §2.14: a 1-D time series with embedded arrays for search results.
	inner := &Schema{
		Name:  "results",
		Dims:  []Dimension{{Name: "rank", High: Unbounded}},
		Attrs: []Attribute{{Name: "item", Type: TInt64}, {Name: "clicked", Type: TBool}},
	}
	outer := &Schema{
		Name:  "session",
		Dims:  []Dimension{{Name: "t", High: Unbounded}},
		Attrs: []Attribute{{Name: "query", Type: TString}, {Name: "results", Type: TArray, Nested: inner}},
	}
	s := MustNew(outer)
	r := MustNew(inner)
	_ = r.Set(Coord{1}, Cell{Int64(7), Bool64(true)})
	_ = r.Set(Coord{2}, Cell{Int64(9), Bool64(false)})
	if err := s.Set(Coord{1}, Cell{String64("pre-war Gibson banjo"), Nested(r)}); err != nil {
		t.Fatal(err)
	}
	cell, ok := s.At(Coord{1})
	if !ok {
		t.Fatal("outer cell absent")
	}
	got := cell[1].Arr
	if got == nil {
		t.Fatal("nested array lost")
	}
	in, ok := got.At(Coord{2})
	if !ok || in[0].Int != 9 || in[1].Bool {
		t.Errorf("nested cell = %v,%v", in, ok)
	}
}

func TestChunkedLayout(t *testing.T) {
	s := remoteSchema(10)
	s.Dims[0].ChunkLen = 4
	s.Dims[1].ChunkLen = 4
	a := MustNew(s)
	if err := a.Fill(func(c Coord) Cell {
		return Cell{Float64(float64(c[0]*100 + c[1])), Float64(0), Float64(0)}
	}); err != nil {
		t.Fatal(err)
	}
	if got := a.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	// 10/4 -> 3 chunks per dim -> 9 chunks; edge chunks are trimmed.
	chunks := a.Chunks()
	if len(chunks) != 9 {
		t.Fatalf("chunk count = %d, want 9", len(chunks))
	}
	last := chunks[len(chunks)-1]
	if last.Shape[0] != 2 || last.Shape[1] != 2 {
		t.Errorf("edge chunk shape = %v, want [2 2]", last.Shape)
	}
	for _, c := range []Coord{{1, 1}, {4, 4}, {5, 5}, {10, 10}, {4, 5}} {
		cell, ok := a.At(c)
		if !ok || cell[0].Float != float64(c[0]*100+c[1]) {
			t.Errorf("At%v = %v,%v", c, cell, ok)
		}
	}
}

func TestIterOrderAndStop(t *testing.T) {
	s := remoteSchema(3)
	s.Dims[0].ChunkLen = 2
	s.Dims[1].ChunkLen = 2
	a := MustNew(s)
	_ = a.Fill(func(c Coord) Cell { return Cell{Float64(0), Float64(0), Float64(0)} })
	var n int
	a.Iter(func(c Coord, cell Cell) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d cells, want 5", n)
	}
	n = 0
	a.Iter(func(c Coord, cell Cell) bool { n++; return true })
	if n != 9 {
		t.Errorf("full iteration visited %d, want 9", n)
	}
}

func TestRowMajorRoundTrip(t *testing.T) {
	f := func(x, y, z uint8) bool {
		shape := []int64{4, 5, 6}
		origin := Coord{1, 1, 1}
		c := Coord{int64(x%4) + 1, int64(y%5) + 1, int64(z%6) + 1}
		idx := RowMajorIndex(origin, shape, c)
		back := CoordAt(origin, shape, idx)
		return back.Equal(c) && idx >= 0 && idx < 4*5*6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxAlgebra(t *testing.T) {
	b1 := NewBox(Coord{1, 1}, Coord{4, 4})
	b2 := NewBox(Coord{3, 3}, Coord{6, 6})
	b3 := NewBox(Coord{5, 1}, Coord{6, 2})
	inter, ok := b1.Intersect(b2)
	if !ok || !inter.Lo.Equal(Coord{3, 3}) || !inter.Hi.Equal(Coord{4, 4}) {
		t.Errorf("intersect = %v,%v", inter, ok)
	}
	if _, ok := b1.Intersect(b3); ok {
		t.Error("disjoint boxes intersect")
	}
	u := b1.Union(b2)
	if !u.Lo.Equal(Coord{1, 1}) || !u.Hi.Equal(Coord{6, 6}) {
		t.Errorf("union = %v", u)
	}
	if b1.Cells() != 16 {
		t.Errorf("cells = %d", b1.Cells())
	}
	if !b1.Contains(Coord{4, 4}) || b1.Contains(Coord{5, 4}) {
		t.Error("contains wrong")
	}
}

func TestBoxIntersectsProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		lo1, hi1 := int64(min8(a1, a2)), int64(max8(a1, a2))
		lo2, hi2 := int64(min8(b1, b2)), int64(max8(b1, b2))
		x := NewBox(Coord{lo1}, Coord{hi1})
		y := NewBox(Coord{lo2}, Coord{hi2})
		want := hi1 >= lo2 && hi2 >= lo1
		return x.Intersects(y) == want && y.Intersects(x) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func min8(a, b int8) int8 {
	if a < b {
		return a
	}
	return b
}

func max8(a, b int8) int8 {
	if a > b {
		return a
	}
	return b
}

func TestBitmap(t *testing.T) {
	b := NewBitmap(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("get/set wrong")
	}
	if b.Count() != 3 {
		t.Errorf("count = %d, want 3", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Error("clear wrong")
	}
	b.SetAll()
	if b.Count() != 130 {
		t.Errorf("SetAll count = %d, want 130", b.Count())
	}
	c := b.Clone()
	c.Clear(0)
	if !b.Get(0) {
		t.Error("clone aliases original")
	}
}

func TestBitmapProperty(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitmap(1 << 16)
		seen := map[uint16]bool{}
		for _, i := range idxs {
			b.Set(int64(i))
			seen[i] = true
		}
		if b.Count() != int64(len(seen)) {
			return false
		}
		for i := range seen {
			if !b.Get(int64(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValueCompareAndEqual(t *testing.T) {
	if !Int64(3).Equal(Float64(3)) {
		t.Error("cross-numeric equality failed")
	}
	if Int64(3).Equal(Int64(4)) {
		t.Error("3 == 4")
	}
	if NullValue(TInt64).Equal(NullValue(TInt64)) {
		t.Error("NULL == NULL should be false (join semantics)")
	}
	if Int64(1).Compare(Int64(2)) != -1 || Int64(2).Compare(Int64(1)) != 1 || Int64(2).Compare(Int64(2)) != 0 {
		t.Error("int compare wrong")
	}
	if String64("a").Compare(String64("b")) != -1 {
		t.Error("string compare wrong")
	}
	if NullValue(TInt64).Compare(Int64(0)) != -1 {
		t.Error("NULL should sort first")
	}
}

func TestUncertainValue(t *testing.T) {
	v := UncertainFloat(3.5, 0.2)
	if v.Sigma != 0.2 || v.Float != 3.5 {
		t.Error("uncertain value lost components")
	}
	if v.String() != "3.5±0.2" {
		t.Errorf("String = %q", v.String())
	}
	s := &Schema{
		Name:  "U",
		Dims:  []Dimension{{Name: "i", High: 4}},
		Attrs: []Attribute{{Name: "x", Type: TFloat64, Uncertain: true}},
	}
	a := MustNew(s)
	_ = a.Set(Coord{2}, Cell{UncertainFloat(1.0, 0.5)})
	got, _ := a.At(Coord{2})
	if got[0].Sigma != 0.5 {
		t.Errorf("sigma lost through chunk: %v", got[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustNew(remoteSchema(4))
	_ = a.Fill(func(c Coord) Cell { return Cell{Float64(1), Float64(1), Float64(1)} })
	b := a.Clone()
	_ = b.Set(Coord{1, 1}, Cell{Float64(9), Float64(9), Float64(9)})
	orig, _ := a.At(Coord{1, 1})
	if orig[0].Float != 1 {
		t.Error("clone aliases original chunks")
	}
}

func TestParseType(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Type
	}{{"float", TFloat64}, {"int64", TInt64}, {"integer", TInt64}, {"string", TString}, {"bool", TBool}} {
		got, err := ParseType(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseType(%q) = %v,%v", c.in, got, err)
		}
	}
	if _, err := ParseType("quaternion"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestRender2D(t *testing.T) {
	s := &Schema{
		Name:  "A",
		Dims:  []Dimension{{Name: "x", High: 2}, {Name: "y", High: 2}},
		Attrs: []Attribute{{Name: "v", Type: TInt64}},
	}
	a := MustNew(s)
	_ = a.Set(Coord{1, 1}, Cell{Int64(1)})
	_ = a.Set(Coord{2, 2}, Cell{NullValue(TInt64)})
	out := Render(a)
	if !containsAll(out, "x\\y", "NULL", "1", ".") {
		t.Errorf("render missing parts:\n%s", out)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !contains(s, sub) {
			return false
		}
	}
	return true
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestPlumbingAccessors(t *testing.T) {
	s := remoteSchema(8)
	s.Dims[0].ChunkLen = 4
	a := MustNew(s)
	_ = a.Set(Coord{3, 3}, Cell{Float64(1), Float64(2), Float64(3)})

	if b := a.Bounds(); len(b) != 2 || b[0] != 8 || b[1] != 8 {
		t.Errorf("Bounds = %v", b)
	}
	ch, ok := a.ChunkAt(Coord{3, 3})
	if !ok || ch == nil {
		t.Fatal("ChunkAt missed allocated chunk")
	}
	if ch.Slots() == 0 || ch.Cols[0].Len() != ch.Slots() {
		t.Errorf("chunk slots/len = %d/%d", ch.Slots(), ch.Cols[0].Len())
	}
	if _, ok := a.ChunkAt(Coord{8, 8}); ok {
		t.Error("ChunkAt found unallocated chunk")
	}
	if a.ByteSize() == 0 || ch.ByteSize() == 0 {
		t.Error("ByteSize = 0")
	}
	if !s.Dims[0].Bounded() {
		t.Error("bounded dim reports unbounded")
	}
	ub := Dimension{Name: "u", High: Unbounded}
	if ub.Bounded() {
		t.Error("unbounded dim reports bounded")
	}
	// Bitmap word round trip.
	b := NewBitmap(70)
	b.Set(1)
	b.Set(69)
	back := FromWords(70, b.Words())
	if !back.Get(1) || !back.Get(69) || back.Get(2) {
		t.Error("FromWords round trip wrong")
	}
	// Box Shape and String.
	box := NewBox(Coord{2, 3}, Coord{4, 9})
	if sh := box.Shape(); sh[0] != 3 || sh[1] != 7 {
		t.Errorf("Shape = %v", sh)
	}
	if box.String() != "[2:4, 3:9]" {
		t.Errorf("Box.String = %q", box.String())
	}
	if Coord([]int64{7, 8}).String() != "[7, 8]" {
		t.Errorf("Coord.String = %q", Coord([]int64{7, 8}).String())
	}
}

func TestRender1DAndList(t *testing.T) {
	s := &Schema{
		Name:  "v",
		Dims:  []Dimension{{Name: "x", High: 3}},
		Attrs: []Attribute{{Name: "val", Type: TInt64}},
	}
	a := MustNew(s)
	_ = a.Set(Coord{1}, Cell{Int64(7)})
	_ = a.Set(Coord{3}, Cell{NullValue(TInt64)})
	out := Render(a)
	if !containsAll(out, "x", "val", "7", "NULL", ".") {
		t.Errorf("render1D:\n%s", out)
	}
	// 3-D arrays fall back to the coordinate list form.
	s3 := &Schema{
		Name: "cube",
		Dims: []Dimension{
			{Name: "a", High: 2}, {Name: "b", High: 2}, {Name: "c", High: 2},
		},
		Attrs: []Attribute{{Name: "v", Type: TInt64}},
	}
	cube := MustNew(s3)
	_ = cube.Set(Coord{1, 2, 1}, Cell{Int64(5)})
	out = Render(cube)
	if !containsAll(out, "[1, 2, 1]", "5") {
		t.Errorf("renderList:\n%s", out)
	}
}

func TestSchemaCloneAndSameShape(t *testing.T) {
	inner := &Schema{
		Name:  "in",
		Dims:  []Dimension{{Name: "k", High: 2}},
		Attrs: []Attribute{{Name: "n", Type: TInt64}},
	}
	s := &Schema{
		Name: "outer",
		Dims: []Dimension{{Name: "x", High: 4}},
		Attrs: []Attribute{
			{Name: "v", Type: TFloat64},
			{Name: "sub", Type: TArray, Nested: inner},
		},
	}
	cp := s.Clone()
	cp.Attrs[1].Nested.Dims[0].High = 99
	if inner.Dims[0].High != 2 {
		t.Error("Clone aliases nested schema")
	}
	o := &Schema{
		Name:  "other",
		Dims:  []Dimension{{Name: "q", High: 4}},
		Attrs: []Attribute{{Name: "w", Type: TInt64}},
	}
	if !s.SameShape(o) {
		t.Error("same-bounds schemas report different shapes")
	}
	o.Dims[0].High = 5
	if s.SameShape(o) {
		t.Error("different bounds report same shape")
	}
	if s.SameShape(&Schema{Dims: nil}) {
		t.Error("dimension-count mismatch reports same shape")
	}
}
