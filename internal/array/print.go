package array

import (
	"fmt"
	"sort"
	"strings"
)

// Render draws a 1-D or 2-D array as the paper's figures draw them: a grid
// with dimension indices on the margins and cell records ("1,1") in the
// body. Absent cells render as ".", NULL cells as "NULL". Used by the
// FIG1–FIG3 reproductions.
func Render(a *Array) string {
	switch len(a.Schema.Dims) {
	case 1:
		return render1D(a)
	case 2:
		return render2D(a)
	default:
		return renderList(a)
	}
}

func cellString(cell Cell, present bool) string {
	if !present {
		return "."
	}
	allNull := true
	for _, v := range cell {
		if !v.Null {
			allNull = false
			break
		}
	}
	if allNull {
		return "NULL"
	}
	parts := make([]string, len(cell))
	for i, v := range cell {
		parts[i] = v.String()
	}
	return strings.Join(parts, ",")
}

func render1D(a *Array) string {
	var b strings.Builder
	dim := a.Schema.Dims[0]
	fmt.Fprintf(&b, "%4s | %s\n", dim.Name, strings.Join(attrNames(a.Schema), ","))
	fmt.Fprintf(&b, "-----+------\n")
	hi := a.Hwm(0)
	for i := int64(1); i <= hi; i++ {
		cell, ok := a.At(Coord{i})
		fmt.Fprintf(&b, "%4d | %s\n", i, cellString(cell, ok))
	}
	return b.String()
}

func render2D(a *Array) string {
	var b strings.Builder
	d0, d1 := a.Schema.Dims[0], a.Schema.Dims[1]
	h0, h1 := a.Hwm(0), a.Hwm(1)

	// Compute column width.
	width := 4
	IterBox(Box{Lo: Coord{1, 1}, Hi: Coord{h0, h1}}, func(c Coord) bool {
		cell, ok := a.At(c)
		if n := len(cellString(cell, ok)); n > width {
			width = n
		}
		return true
	})

	fmt.Fprintf(&b, "%s\\%s", d0.Name, d1.Name)
	pad := len(d0.Name) + len(d1.Name) + 1
	for j := int64(1); j <= h1; j++ {
		fmt.Fprintf(&b, " %*d", width, j)
	}
	b.WriteString("\n")
	for i := int64(1); i <= h0; i++ {
		fmt.Fprintf(&b, "%*d", pad, i)
		for j := int64(1); j <= h1; j++ {
			cell, ok := a.At(Coord{i, j})
			fmt.Fprintf(&b, " %*s", width, cellString(cell, ok))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func renderList(a *Array) string {
	var lines []string
	a.Iter(func(c Coord, cell Cell) bool {
		lines = append(lines, fmt.Sprintf("%s = %s", c, cellString(cell, true)))
		return true
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func attrNames(s *Schema) []string {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Name
	}
	return out
}
