package array

import (
	"fmt"
	"sort"
)

// Enhancement attaches a pseudo-coordinate system to a basic array (§2.1):
// any function over the integer dimensions — transposition, scaling,
// translation, irregular coordinates, Mercator geometry, wall-clock time for
// the history dimension. The basic [ ... ] addressing keeps working; the
// enhanced { ... } addressing resolves through the enhancement. The array
// model does not dictate how pseudo-coordinates are implemented; this is the
// paper's "functional representation" option.
type Enhancement interface {
	// Name identifies the enhancement (the UDF name it was created from).
	Name() string
	// OutDims names the pseudo-coordinates this enhancement adds.
	OutDims() []string
	// Map converts a basic integer coordinate to pseudo-coordinate values.
	Map(basic Coord) []Value
	// Invert converts pseudo-coordinate values back to a basic coordinate.
	// ok is false when the pseudo-coordinates address no cell.
	Invert(pseudo []Value) (basic Coord, ok bool)
}

// ShapeFunc defines ragged (non-rectangular) array boundaries (§2.1): a
// user-defined function with integer arguments returning low- and high-water
// marks. Arrays that digitize circles and other complex shapes are possible.
type ShapeFunc interface {
	// Name identifies the shape function.
	Name() string
	// Contains reports whether the coordinate is inside the ragged boundary.
	Contains(c Coord) bool
	// Bounds returns the minimum low-water and maximum high-water mark of
	// dimension dim when the other dimensions are fixed as given; entries of
	// fixed that are 0 are unspecified (the paper's shape-function(A[7,*])
	// and shape-function(A[I,*]) queries).
	Bounds(dim int, fixed Coord) (lo, hi int64)
}

// Array is a physical array instance: a schema plus a set of rectangular
// chunks laid out on a regular chunking grid, with optional enhancements
// and at most one shape function (§2.1).
type Array struct {
	Schema *Schema
	// chunks maps chunk-origin keys to chunks.
	chunks map[string]*Chunk
	// hwm is the observed high-water mark per dimension; for bounded
	// dimensions it equals the declared bound.
	hwm []int64
	// Enhancements added with "Enhance A with f".
	Enhancements []Enhancement
	// Shape is the optional shape function added with "Shape A with f".
	Shape ShapeFunc
	// last caches the most recently touched chunk; sequential access
	// patterns (loads, scans) hit it almost always. Arrays are not safe
	// for concurrent mutation, so a plain cache is fine.
	last    *Chunk
	lastBox Box
	// sorted caches the origin-ordered chunk list; invalidated when the
	// chunk population changes.
	sorted []*Chunk
}

// New creates an empty array instance of the schema. The schema is validated.
func New(s *Schema) (*Array, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	a := &Array{Schema: s, chunks: map[string]*Chunk{}}
	a.hwm = make([]int64, len(s.Dims))
	for i, d := range s.Dims {
		if d.High != Unbounded {
			a.hwm[i] = d.High
		}
	}
	return a, nil
}

// MustNew is New for statically correct schemas; it panics on error.
func MustNew(s *Schema) *Array {
	a, err := New(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Hwm returns the current high-water mark of dimension i (for unbounded
// dimensions, the largest coordinate written so far).
func (a *Array) Hwm(i int) int64 { return a.hwm[i] }

// Bounds returns the current effective bounds of all dimensions.
func (a *Array) Bounds() []int64 { return append([]int64(nil), a.hwm...) }

// DefaultChunkLen is the chunking stride used for unbounded dimensions that
// do not declare a ChunkLen.
const DefaultChunkLen = 64

// chunkOrigin returns the origin of the chunk containing c.
func (a *Array) chunkOrigin(c Coord) Coord {
	o := make(Coord, len(c))
	for i, d := range a.Schema.Dims {
		cl := d.ChunkLen
		if cl <= 0 {
			if d.High != Unbounded {
				o[i] = 1
				continue
			}
			cl = DefaultChunkLen
		}
		o[i] = ((c[i]-1)/cl)*cl + 1
	}
	return o
}

// chunkShape returns the shape of the chunk at the given origin.
func (a *Array) chunkShape(origin Coord) []int64 {
	sh := make([]int64, len(origin))
	for i, d := range a.Schema.Dims {
		cl := d.ChunkLen
		if cl <= 0 {
			if d.High != Unbounded {
				sh[i] = d.High
				continue
			}
			cl = DefaultChunkLen
		}
		sh[i] = cl
		if d.High != Unbounded && origin[i]+cl-1 > d.High {
			sh[i] = d.High - origin[i] + 1
		}
	}
	return sh
}

// GridOrigin returns the origin of this array's grid chunk containing c.
func (a *Array) GridOrigin(c Coord) Coord { return a.chunkOrigin(c) }

// GridShape returns the shape of this array's grid chunk at origin: the
// declared chunk extents clamped to the dimension bounds. Chunk-parallel
// operators size their disjoint output chunks with it.
func (a *Array) GridShape(origin Coord) []int64 { return a.chunkShape(origin) }

// CoordInside reports whether c is a legal cell address: correct
// dimensionality, >= 1 everywhere, within declared bounds, and inside the
// shape function if any. It is the allocation-free form of the check At
// performs, safe for concurrent readers.
func (a *Array) CoordInside(c Coord) bool {
	if len(c) != len(a.Schema.Dims) {
		return false
	}
	for i, d := range a.Schema.Dims {
		if c[i] < 1 || (d.High != Unbounded && c[i] > d.High) {
			return false
		}
	}
	return a.Shape == nil || a.Shape.Contains(c)
}

// checkCoord validates a coordinate against dimensionality, bounds, and the
// shape function if any.
func (a *Array) checkCoord(c Coord) error {
	if len(c) != len(a.Schema.Dims) {
		return fmt.Errorf("array %s: coordinate %v has %d dims, want %d", a.Schema.Name, c, len(c), len(a.Schema.Dims))
	}
	for i, d := range a.Schema.Dims {
		if c[i] < 1 {
			return fmt.Errorf("array %s: coordinate %v below 1 in dimension %s", a.Schema.Name, c, d.Name)
		}
		if d.High != Unbounded && c[i] > d.High {
			return fmt.Errorf("array %s: coordinate %v exceeds high-water mark %d in dimension %s", a.Schema.Name, c, d.High, d.Name)
		}
	}
	if a.Shape != nil && !a.Shape.Contains(c) {
		return fmt.Errorf("array %s: coordinate %v outside shape function %s", a.Schema.Name, c, a.Shape.Name())
	}
	return nil
}

// chunkFor returns the chunk containing c, allocating it if create is set,
// consulting the last-chunk cache first.
func (a *Array) chunkFor(c Coord, create bool) *Chunk {
	if a.last != nil && a.lastBox.Contains(c) {
		return a.last
	}
	o := a.chunkOrigin(c)
	key := o.Key()
	ch, ok := a.chunks[key]
	if !ok {
		if !create {
			return nil
		}
		ch = NewChunk(a.Schema, o, a.chunkShape(o))
		a.chunks[key] = ch
		a.sorted = nil
	}
	a.last = ch
	a.lastBox = ch.Box()
	return ch
}

// Set writes a cell at the coordinate.
func (a *Array) Set(c Coord, cell Cell) error {
	if err := a.checkCoord(c); err != nil {
		return err
	}
	ch := a.chunkFor(c, true)
	for i := range c {
		if c[i] > a.hwm[i] {
			a.hwm[i] = c[i]
		}
	}
	return ch.Set(c, cell)
}

// At returns the cell at the coordinate. ok is false for absent cells.
// Exists?[A, c...] (§2.2.1) is At with the ok result.
func (a *Array) At(c Coord) (Cell, bool) {
	if err := a.checkCoord(c); err != nil {
		return nil, false
	}
	ch := a.chunkFor(c, false)
	if ch == nil {
		return nil, false
	}
	return ch.Get(c)
}

// PeekAt is At without the last-chunk cache update, so it is safe for
// concurrent readers (the chunk-parallel operators probe join inputs with
// it) as long as no goroutine mutates the array. Callers fanning out tasks
// should call Chunks() once beforehand so the lazily built sorted list
// isn't raced either.
func (a *Array) PeekAt(c Coord) (Cell, bool) {
	if err := a.checkCoord(c); err != nil {
		return nil, false
	}
	ch, ok := a.chunks[a.chunkOrigin(c).Key()]
	if !ok {
		return nil, false
	}
	return ch.Get(c)
}

// Exists reports whether a cell is present at the coordinate (§2.2.1
// "Exists? [A, 7, 7]").
func (a *Array) Exists(c Coord) bool {
	_, ok := a.At(c)
	return ok
}

// AtEnhanced resolves a cell through the named enhancement's pseudo-
// coordinates: the paper's A{16.3, 48.2} addressing.
func (a *Array) AtEnhanced(name string, pseudo []Value) (Cell, bool) {
	for _, e := range a.Enhancements {
		if e.Name() == name {
			basic, ok := e.Invert(pseudo)
			if !ok {
				return nil, false
			}
			return a.At(basic)
		}
	}
	return nil, false
}

// Enhance attaches a pseudo-coordinate system (§2.1 "Enhance A with f").
// Any number of enhancements may be attached.
func (a *Array) Enhance(e Enhancement) { a.Enhancements = append(a.Enhancements, e) }

// SetShape attaches the array's single shape function (§2.1
// "Shape array_name with shape_function"). It replaces any previous one.
func (a *Array) SetShape(f ShapeFunc) { a.Shape = f }

// Erase removes a cell if present.
func (a *Array) Erase(c Coord) {
	if ch := a.chunkFor(c, false); ch != nil {
		ch.Erase(c)
	}
}

// Count returns the number of present cells.
func (a *Array) Count() int64 {
	var n int64
	for _, ch := range a.chunks {
		n += ch.CellsPresent()
	}
	return n
}

// Chunks returns the array's chunks ordered by origin (deterministic).
// The returned slice is cached and shared; callers must not modify it.
func (a *Array) Chunks() []*Chunk {
	if a.sorted != nil {
		return a.sorted
	}
	out := make([]*Chunk, 0, len(a.chunks))
	for _, ch := range a.chunks {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Origin, out[j].Origin
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	a.sorted = out
	return out
}

// PutChunk installs a prebuilt chunk (used by the loader, the cluster
// transport, and in-situ adaptors). The chunk must align with the array's
// chunking grid. High-water marks advance to the largest coordinate of a
// present cell, not the chunk's box, so sparse chunks in unbounded arrays
// report accurate bounds.
func (a *Array) PutChunk(ch *Chunk) {
	a.chunks[ch.Origin.Key()] = ch
	a.last = nil // the cache may point at a replaced chunk
	a.sorted = nil
	if ch.CellsPresent() == ch.Slots() {
		// Dense chunk: the box is exact.
		box := ch.Box()
		for i := range a.hwm {
			if box.Hi[i] > a.hwm[i] {
				a.hwm[i] = box.Hi[i]
			}
		}
		return
	}
	IterBox(ch.Box(), func(c Coord) bool {
		if ch.Present.Get(ch.Index(c)) {
			for i := range a.hwm {
				if c[i] > a.hwm[i] {
					a.hwm[i] = c[i]
				}
			}
		}
		return true
	})
}

// ChunkAligned reports whether ch's origin and shape land exactly on this
// array's chunking grid, i.e. whether PutChunk may adopt it wholesale.
func (a *Array) ChunkAligned(ch *Chunk) bool {
	if len(ch.Origin) != len(a.Schema.Dims) {
		return false
	}
	want := a.chunkOrigin(ch.Origin)
	for i := range want {
		if ch.Origin[i] != want[i] {
			return false
		}
	}
	shape := a.chunkShape(ch.Origin)
	for i := range shape {
		if ch.Shape[i] != shape[i] {
			return false
		}
	}
	return true
}

// MergeChunk unions a prebuilt chunk into the array. A grid-aligned chunk
// whose origin is not yet populated is adopted wholesale via PutChunk —
// no per-cell work; anything else falls back to Set per present cell. The
// cluster coordinator merges decoded partition chunks with this.
func (a *Array) MergeChunk(ch *Chunk) error {
	if ch.CellsPresent() == 0 {
		return nil
	}
	if _, taken := a.chunks[ch.Origin.Key()]; !taken && a.ChunkAligned(ch) {
		a.PutChunk(ch)
		return nil
	}
	var err error
	IterBox(ch.Box(), func(c Coord) bool {
		idx := ch.Index(c)
		if !ch.Present.Get(idx) {
			return true
		}
		cell := make(Cell, len(ch.Cols))
		for ai, col := range ch.Cols {
			cell[ai] = col.Get(idx)
		}
		if e := a.Set(c, cell); e != nil {
			err = e
			return false
		}
		return true
	})
	return err
}

// ChunkAt returns the chunk containing the coordinate, if allocated.
func (a *Array) ChunkAt(c Coord) (*Chunk, bool) {
	ch, ok := a.chunks[a.chunkOrigin(c).Key()]
	return ch, ok
}

// Iter calls fn for every present cell in row-major coordinate order
// within each chunk (chunks ordered by origin). The Coord and Cell passed
// to fn are freshly allocated per cell and may be retained.
// Return false from fn to stop.
func (a *Array) Iter(fn func(Coord, Cell) bool) {
	nd := len(a.Schema.Dims)
	for _, ch := range a.Chunks() {
		slots := ch.Slots()
		if ch.CellsPresent() == 0 {
			continue
		}
		// Walk slots linearly, tracking the coordinate incrementally.
		c := ch.Origin.Clone()
		for idx := int64(0); idx < slots; idx++ {
			if ch.Present.Get(idx) {
				cell := make(Cell, len(ch.Cols))
				for ai, col := range ch.Cols {
					cell[ai] = col.Get(idx)
				}
				if !fn(c.Clone(), cell) {
					return
				}
			}
			// Increment the row-major coordinate (last dim fastest).
			for d := nd - 1; d >= 0; d-- {
				c[d]++
				if c[d] < ch.Origin[d]+ch.Shape[d] {
					break
				}
				c[d] = ch.Origin[d]
			}
		}
	}
}

// IterReuse is the allocation-free variant of Iter for operator inner
// loops: the Coord and Cell passed to fn are REUSED between calls — fn must
// copy anything it retains. Iteration order matches Iter.
func (a *Array) IterReuse(fn func(Coord, Cell) bool) {
	nd := len(a.Schema.Dims)
	var cell Cell
	var c Coord
	for _, ch := range a.Chunks() {
		if ch.CellsPresent() == 0 {
			continue
		}
		if cell == nil {
			cell = make(Cell, len(ch.Cols))
			c = make(Coord, nd)
		}
		copy(c, ch.Origin)
		slots := ch.Slots()
		for idx := int64(0); idx < slots; idx++ {
			if ch.Present.Get(idx) {
				for ai, col := range ch.Cols {
					cell[ai] = col.Get(idx)
				}
				if !fn(c, cell) {
					return
				}
			}
			for d := nd - 1; d >= 0; d-- {
				c[d]++
				if c[d] < ch.Origin[d]+ch.Shape[d] {
					break
				}
				c[d] = ch.Origin[d]
			}
		}
	}
}

// IterBoxReuse streams the present cells intersecting q, pruning chunks
// whose boxes miss it — the engine's predicate-pushdown scan kernel. Like
// IterReuse, the Coord and Cell passed to fn are reused between calls.
func (a *Array) IterBoxReuse(q Box, fn func(Coord, Cell) bool) {
	var cell Cell
	for _, ch := range a.Chunks() {
		inter, ok := ch.Box().Intersect(q)
		if !ok || ch.CellsPresent() == 0 {
			continue
		}
		if cell == nil {
			cell = make(Cell, len(ch.Cols))
		}
		stop := false
		IterBox(inter, func(c Coord) bool {
			idx := ch.Index(c)
			if !ch.Present.Get(idx) {
				return true
			}
			for ai, col := range ch.Cols {
				cell[ai] = col.Get(idx)
			}
			if !fn(c, cell) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// ScanFloats is the engine's columnar scan kernel: it streams one float64
// attribute's present values within q, reading the chunk column directly
// with a tight loop over the innermost dimension. The Coord passed to fn is
// reused between calls. This is the fast path dense analytics (slab
// averages, regrids, threshold scans) compile to.
func (a *Array) ScanFloats(q Box, attr int, fn func(c Coord, v float64) bool) {
	nd := len(a.Schema.Dims)
	c := make(Coord, nd)
	for _, ch := range a.Chunks() {
		inter, ok := ch.Box().Intersect(q)
		if !ok || ch.CellsPresent() == 0 {
			continue
		}
		floats := ch.Cols[attr].Floats
		if floats == nil {
			continue
		}
		present := ch.Present
		// Iterate the outer dimensions; run the innermost as a tight loop
		// over contiguous slots.
		copy(c, inter.Lo)
		last := nd - 1
		for {
			// base is the slot of (outer dims of c, inner = inter.Lo).
			base := RowMajorIndex(ch.Origin, ch.Shape, c)
			for j := inter.Lo[last]; j <= inter.Hi[last]; j++ {
				idx := base + (j - inter.Lo[last])
				if present.Get(idx) {
					c[last] = j
					if !fn(c, floats[idx]) {
						return
					}
				}
			}
			c[last] = inter.Lo[last]
			// Advance the outer dimensions.
			d := last - 1
			for d >= 0 {
				c[d]++
				if c[d] <= inter.Hi[d] {
					break
				}
				c[d] = inter.Lo[d]
				d--
			}
			if d < 0 {
				break
			}
		}
	}
}

// Fill populates every cell of a bounded array using gen.
func (a *Array) Fill(gen func(Coord) Cell) error {
	if a.Schema.CellCount() < 0 {
		return fmt.Errorf("array %s: cannot Fill an unbounded array", a.Schema.Name)
	}
	var err error
	IterBox(WholeBox(a.Schema), func(c Coord) bool {
		if a.Shape != nil && !a.Shape.Contains(c) {
			return true
		}
		if e := a.Set(c, gen(c)); e != nil {
			err = e
			return false
		}
		return true
	})
	return err
}

// ByteSize estimates total in-memory payload.
func (a *Array) ByteSize() int64 {
	var n int64
	for _, ch := range a.chunks {
		n += ch.ByteSize()
	}
	return n
}

// Clone deep-copies the array (enhancements and shape are shared; they are
// immutable).
func (a *Array) Clone() *Array {
	out := &Array{
		Schema:       a.Schema.Clone(),
		chunks:       make(map[string]*Chunk, len(a.chunks)),
		hwm:          append([]int64(nil), a.hwm...),
		Enhancements: append([]Enhancement(nil), a.Enhancements...),
		Shape:        a.Shape,
	}
	for k, ch := range a.chunks {
		out.chunks[k] = ch.Clone()
	}
	return out
}
