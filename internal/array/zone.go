package array

import "math"

// ZoneMap summarizes one column of one chunk for predicate pruning: the
// min/max over present non-null values, the null count, and a capped
// distinct-count hint. Zone maps are computed by the storage encoder at
// bucket-write time (the paper's §2.8 bet that scan-heavy science
// workloads win when the executor can reason about compressed chunks
// without decoding them) and ride beside the chunk so Filter/Aggregate
// can skip whole chunks whose value range cannot satisfy a predicate.
type ZoneMap struct {
	Kind Type // TInt64, TFloat64, TString, or TBool

	// HasRange is false when the chunk holds no present, non-null (and
	// for floats, non-NaN) value: min/max are then meaningless.
	HasRange bool
	// HasNaN records that a float column contains NaN values, which
	// satisfy "!=", "<=" and ">=" under the engine's comparison
	// semantics and so block pruning for those operators.
	HasNaN bool

	MinInt   int64 // TInt64 and TBool (0/1) bounds
	MaxInt   int64
	MinFloat float64 // TFloat64 bounds over non-NaN values
	MaxFloat float64
	MinStr   string // TString bounds
	MaxStr   string

	// Nulls counts present cells whose value is null.
	Nulls int64
	// Distinct is a capped distinct-count hint over non-null values:
	// an exact count when positive, 0 when unknown (over the cap).
	Distinct int64
}

// zoneDistinctCap bounds the per-column distinct tracking during zone
// computation; columns with more distinct values report Distinct == 0.
const zoneDistinctCap = 256

// ComputeZone builds a zone map for col restricted to the slots marked in
// present. Nested-array columns have no useful ordering and return nil.
func ComputeZone(col *Column, present *Bitmap) *ZoneMap {
	switch col.Type {
	case TInt64, TFloat64, TString, TBool:
	default:
		return nil
	}
	z := &ZoneMap{Kind: col.Type}
	n := col.Len()
	switch col.Type {
	case TInt64:
		distinct := make(map[int64]struct{}, 16)
		for i := int64(0); i < n; i++ {
			if !present.Get(i) {
				continue
			}
			if col.Nulls.Get(i) {
				z.Nulls++
				continue
			}
			v := col.Ints[i]
			if !z.HasRange {
				z.HasRange, z.MinInt, z.MaxInt = true, v, v
			} else if v < z.MinInt {
				z.MinInt = v
			} else if v > z.MaxInt {
				z.MaxInt = v
			}
			if distinct != nil {
				if distinct[v] = struct{}{}; len(distinct) > zoneDistinctCap {
					distinct = nil
				}
			}
		}
		if distinct != nil {
			z.Distinct = int64(len(distinct))
		}
	case TFloat64:
		distinct := make(map[float64]struct{}, 16)
		for i := int64(0); i < n; i++ {
			if !present.Get(i) {
				continue
			}
			if col.Nulls.Get(i) {
				z.Nulls++
				continue
			}
			v := col.Floats[i]
			if math.IsNaN(v) {
				z.HasNaN = true
				continue
			}
			if !z.HasRange {
				z.HasRange, z.MinFloat, z.MaxFloat = true, v, v
			} else if v < z.MinFloat {
				z.MinFloat = v
			} else if v > z.MaxFloat {
				z.MaxFloat = v
			}
			if distinct != nil {
				if distinct[v] = struct{}{}; len(distinct) > zoneDistinctCap {
					distinct = nil
				}
			}
		}
		if distinct != nil {
			z.Distinct = int64(len(distinct))
		}
	case TString:
		distinct := make(map[string]struct{}, 16)
		for i := int64(0); i < n; i++ {
			if !present.Get(i) {
				continue
			}
			if col.Nulls.Get(i) {
				z.Nulls++
				continue
			}
			v := col.Strs[i]
			if !z.HasRange {
				z.HasRange, z.MinStr, z.MaxStr = true, v, v
			} else if v < z.MinStr {
				z.MinStr = v
			} else if v > z.MaxStr {
				z.MaxStr = v
			}
			if distinct != nil {
				if distinct[v] = struct{}{}; len(distinct) > zoneDistinctCap {
					distinct = nil
				}
			}
		}
		if distinct != nil {
			z.Distinct = int64(len(distinct))
		}
	case TBool:
		var seenTrue, seenFalse bool
		for i := int64(0); i < n; i++ {
			if !present.Get(i) {
				continue
			}
			if col.Nulls.Get(i) {
				z.Nulls++
				continue
			}
			if col.Bools[i] {
				seenTrue = true
			} else {
				seenFalse = true
			}
		}
		if seenTrue || seenFalse {
			z.HasRange = true
			if seenTrue {
				z.MaxInt = 1
			}
			if !seenFalse {
				z.MinInt = 1
			}
			z.Distinct = 1
			if seenTrue && seenFalse {
				z.Distinct = 2
			}
		}
	}
	return z
}

// Clone returns a copy of z (nil-safe).
func (z *ZoneMap) Clone() *ZoneMap {
	if z == nil {
		return nil
	}
	out := *z
	return &out
}

// Union widens z to also cover everything o covers, returning the merged
// map. Either side nil (an unzoned chunk) makes the union unknown: a
// merged summary must never claim bounds it cannot prove.
func (z *ZoneMap) Union(o *ZoneMap) *ZoneMap {
	if z == nil || o == nil || z.Kind != o.Kind {
		return nil
	}
	out := z.Clone()
	out.HasNaN = z.HasNaN || o.HasNaN
	out.Nulls = z.Nulls + o.Nulls
	out.Distinct = 0 // distinct counts do not add across chunks
	if !o.HasRange {
		return out
	}
	if !z.HasRange {
		out.HasRange = true
		out.MinInt, out.MaxInt = o.MinInt, o.MaxInt
		out.MinFloat, out.MaxFloat = o.MinFloat, o.MaxFloat
		out.MinStr, out.MaxStr = o.MinStr, o.MaxStr
		return out
	}
	switch z.Kind {
	case TFloat64:
		out.MinFloat = math.Min(z.MinFloat, o.MinFloat)
		out.MaxFloat = math.Max(z.MaxFloat, o.MaxFloat)
	case TString:
		if o.MinStr < out.MinStr {
			out.MinStr = o.MinStr
		}
		if o.MaxStr > out.MaxStr {
			out.MaxStr = o.MaxStr
		}
	default:
		if o.MinInt < out.MinInt {
			out.MinInt = o.MinInt
		}
		if o.MaxInt > out.MaxInt {
			out.MaxInt = o.MaxInt
		}
	}
	return out
}

// CanMatch reports whether some present, non-null value summarized by z
// could satisfy `value op cv` under the engine's comparison semantics
// (exact int64 for int = int, float64 conversion for ordered numeric
// comparisons, lexicographic for strings). It is conservative: anything
// it cannot reason about returns true, and a false return is a proof
// that the predicate is false-or-NULL for every cell of the chunk.
func (z *ZoneMap) CanMatch(op string, cv Value) bool {
	if z == nil {
		return true
	}
	if cv.Null {
		return false // comparing with NULL yields NULL, never true
	}
	switch z.Kind {
	case TInt64, TFloat64, TBool:
		if !isNumeric(cv.Type) {
			return true
		}
		return z.numericCanMatch(op, cv)
	case TString:
		if cv.Type != TString {
			return true
		}
		return z.stringCanMatch(op, cv.Str)
	}
	return true
}

func (z *ZoneMap) numericCanMatch(op string, cv Value) bool {
	// int64→float64 conversion is monotone, so the float images of the
	// int bounds still bound every converted cell value.
	var lo, hi float64
	hasNaN := false
	switch z.Kind {
	case TInt64, TBool:
		lo, hi = float64(z.MinInt), float64(z.MaxInt)
	case TFloat64:
		lo, hi = z.MinFloat, z.MaxFloat
		hasNaN = z.HasNaN
	}
	cf := cv.AsFloat()
	if math.IsNaN(cf) {
		// value op NaN: =, <, > are always false; != is true for any
		// non-null cell; <= and >= evaluate as "not >" / "not <" which
		// NaN renders vacuously true.
		switch op {
		case "!=", "<=", ">=":
			return z.HasRange || hasNaN
		}
		return false
	}
	if hasNaN {
		switch op {
		case "!=", "<=", ">=":
			return true // NaN cells satisfy these against any constant
		}
	}
	if !z.HasRange {
		return false // every present cell is null (or NaN, handled above)
	}
	switch op {
	case "=":
		if z.Kind == TInt64 && cv.Type == TInt64 {
			return cv.Int >= z.MinInt && cv.Int <= z.MaxInt
		}
		return cf >= lo && cf <= hi
	case "!=":
		if z.Kind == TInt64 && cv.Type == TInt64 {
			return !(z.MinInt == z.MaxInt && z.MinInt == cv.Int)
		}
		return !(lo == hi && lo == cf)
	case "<":
		return lo < cf
	case "<=":
		return !(lo > cf)
	case ">":
		return hi > cf
	case ">=":
		return !(hi < cf)
	}
	return true
}

func (z *ZoneMap) stringCanMatch(op, cs string) bool {
	if !z.HasRange {
		return false
	}
	switch op {
	case "=":
		return cs >= z.MinStr && cs <= z.MaxStr
	case "!=":
		return !(z.MinStr == z.MaxStr && z.MinStr == cs)
	case "<":
		return z.MinStr < cs
	case "<=":
		return z.MinStr <= cs
	case ">":
		return z.MaxStr > cs
	case ">=":
		return z.MaxStr >= cs
	}
	return true
}

// ZonePred is a predicate in zone-map terms: an attribute index, a
// comparison op ("=", "!=", "<", "<=", ">", ">="), and a constant. A
// conjunction of ZonePreds prunes a chunk when any single member cannot
// match — the chunk then contains no cell for which the full predicate
// evaluates to true.
type ZonePred struct {
	Attr int
	Op   string
	Val  Value
}

// CanMatchAll reports whether a chunk with the given per-attribute zone
// maps could contain a cell satisfying every pred. Missing zones (nil
// entries, out-of-range attrs) are conservative matches.
func CanMatchAll(zones []*ZoneMap, preds []ZonePred) bool {
	for _, p := range preds {
		if p.Attr < 0 || p.Attr >= len(zones) {
			continue
		}
		if z := zones[p.Attr]; z != nil && !z.CanMatch(p.Op, p.Val) {
			return false
		}
	}
	return true
}

// ColEnc is the encoded-structure view the storage decoder retains beside
// a materialized column so operators can execute run-at-a-time or on
// dictionary codes without re-deriving the structure. It is advisory and
// describes the column only until the column is mutated (Set/CopyFrom
// drop it).
type ColEnc struct {
	// RunLens, when non-nil, is the RLE view: run k covers RunLens[k]
	// consecutive slots, the lengths sum to the column's slot count, and
	// every slot in a run holds the same value (read it from the
	// materialized vector at the run's first slot).
	RunLens []int64
	// Dict and Codes, when non-nil, are the dictionary view for string
	// columns: Codes[i] indexes Dict and Strs[i] == Dict[Codes[i]].
	Dict  []string
	Codes []uint32
}
