package array

import "math/bits"

// Bitmap is a fixed-length bit set used for chunk presence and null masks.
type Bitmap struct {
	n     int64
	words []uint64
}

// NewBitmap allocates a cleared bitmap of n bits.
func NewBitmap(n int64) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the bit count.
func (b *Bitmap) Len() int64 { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int64) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int64) { b.words[i>>6] &^= 1 << uint(i&63) }

// Get reports bit i.
func (b *Bitmap) Get(i int64) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// SetAll sets every bit.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int64 {
	b.trim()
	var n int
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return int64(n)
}

// CountRange returns the number of set bits in [lo, hi), clamped to the
// bitmap's length. It is the ranged popcount the run-at-a-time operators
// use to count present cells per RLE run.
func (b *Bitmap) CountRange(lo, hi int64) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return 0
	}
	// No trim here: the hi mask already excludes bits past hi-1, and
	// trimming would mutate a bitmap shared by parallel workers.
	w0, w1 := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi-1)&63)
	if w0 == w1 {
		return int64(bits.OnesCount64(b.words[w0] & loMask & hiMask))
	}
	n := bits.OnesCount64(b.words[w0] & loMask)
	for w := w0 + 1; w < w1; w++ {
		n += bits.OnesCount64(b.words[w])
	}
	n += bits.OnesCount64(b.words[w1] & hiMask)
	return int64(n)
}

// SetRange sets every bit in [lo, hi), clamped to the bitmap's length.
func (b *Bitmap) SetRange(lo, hi int64) {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return
	}
	w0, w1 := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi-1)&63)
	if w0 == w1 {
		b.words[w0] |= loMask & hiMask
		return
	}
	b.words[w0] |= loMask
	for w := w0 + 1; w < w1; w++ {
		b.words[w] = ^uint64(0)
	}
	b.words[w1] |= hiMask
}

// CountPresentNotNull returns the number of slots in [lo, hi) that are set
// in present and clear in nulls — the cells an aggregate actually steps.
func CountPresentNotNull(present, nulls *Bitmap, lo, hi int64) int64 {
	n := present.n
	if nulls.n < n {
		n = nulls.n
	}
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return 0
	}
	w0, w1 := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi-1)&63)
	if w0 == w1 {
		return int64(bits.OnesCount64(present.words[w0] &^ nulls.words[w0] & loMask & hiMask))
	}
	c := bits.OnesCount64(present.words[w0] &^ nulls.words[w0] & loMask)
	for w := w0 + 1; w < w1; w++ {
		c += bits.OnesCount64(present.words[w] &^ nulls.words[w])
	}
	c += bits.OnesCount64(present.words[w1] &^ nulls.words[w1] & hiMask)
	return int64(c)
}

// Clone copies the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{n: b.n, words: append([]uint64(nil), b.words...)}
	return out
}

// Words exposes the raw words for serialization.
func (b *Bitmap) Words() []uint64 { return b.words }

// FromWords reconstructs a bitmap from serialized words.
func FromWords(n int64, words []uint64) *Bitmap {
	return &Bitmap{n: n, words: words}
}

// trim clears bits beyond n so Count stays exact after SetAll.
func (b *Bitmap) trim() {
	if b.n%64 == 0 || len(b.words) == 0 {
		return
	}
	last := len(b.words) - 1
	b.words[last] &= (1 << uint(b.n%64)) - 1
}
