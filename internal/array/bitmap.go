package array

import "math/bits"

// Bitmap is a fixed-length bit set used for chunk presence and null masks.
type Bitmap struct {
	n     int64
	words []uint64
}

// NewBitmap allocates a cleared bitmap of n bits.
func NewBitmap(n int64) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the bit count.
func (b *Bitmap) Len() int64 { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int64) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int64) { b.words[i>>6] &^= 1 << uint(i&63) }

// Get reports bit i.
func (b *Bitmap) Get(i int64) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// SetAll sets every bit.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int64 {
	b.trim()
	var n int
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return int64(n)
}

// Clone copies the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{n: b.n, words: append([]uint64(nil), b.words...)}
	return out
}

// Words exposes the raw words for serialization.
func (b *Bitmap) Words() []uint64 { return b.words }

// FromWords reconstructs a bitmap from serialized words.
func FromWords(n int64, words []uint64) *Bitmap {
	return &Bitmap{n: n, words: words}
}

// trim clears bits beyond n so Count stays exact after SetAll.
func (b *Bitmap) trim() {
	if b.n%64 == 0 || len(b.words) == 0 {
		return
	}
	last := len(b.words) - 1
	b.words[last] &= (1 << uint(b.n%64)) - 1
}
