// Command scidb is an interactive AQL shell over an in-process engine.
//
//	scidb                 # REPL on stdin
//	scidb -c 'statement'  # run one statement
//	scidb -f script.aql   # run a statement-per-line script
//
// Shell commands: \l lists arrays, \d NAME describes one, \prov shows the
// provenance log, \q quits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"scidb"
)

func main() {
	cmd := flag.String("c", "", "execute one statement and exit")
	file := flag.String("f", "", "execute a script file (one statement per line)")
	flag.Parse()

	db := scidb.Open()
	switch {
	case *cmd != "":
		if err := run(db, *cmd); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			stmt := strings.TrimSpace(sc.Text())
			if stmt == "" || strings.HasPrefix(stmt, "--") {
				continue
			}
			if err := run(db, stmt); err != nil {
				fmt.Fprintf(os.Stderr, "%s:%d: %v\n", *file, line, err)
				os.Exit(1)
			}
		}
	default:
		repl(db)
	}
}

func repl(db *scidb.DB) {
	fmt.Println("SciDB-Go shell — AQL statements, \\l, \\d NAME, \\df, \\prov, \\q")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("scidb> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "\\q":
			return
		case line == "\\l":
			for _, n := range db.Names() {
				fmt.Println(" ", n)
			}
			continue
		case strings.HasPrefix(line, "\\d "):
			name := strings.TrimSpace(strings.TrimPrefix(line, "\\d "))
			if a, err := db.Array(name); err == nil {
				fmt.Println(" ", a.Schema.String())
				fmt.Printf("  %d cells present\n", a.Count())
			} else if u, err := db.Updatable(name); err == nil {
				fmt.Println(" ", u.FullSchema().String(), "(updatable)")
				fmt.Printf("  history high-water mark: %d\n", u.History())
			} else {
				fmt.Println("  unknown array", name)
			}
			continue
		case line == "\\df":
			for _, n := range db.UDFNames() {
				fmt.Println(" ", n)
			}
			continue
		case line == "\\prov":
			// The provenance log of this session's derivations.
			for _, c := range provCommands(db) {
				fmt.Printf("  [%d] %s\n", c.id, c.text)
			}
			continue
		}
		if err := run(db, line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

type provLine struct {
	id   int64
	text string
}

func provCommands(db *scidb.DB) []provLine {
	var out []provLine
	// Reach the log through a trace of a nonexistent element is not
	// possible; use the exported accessor pattern instead: the DB facade
	// exposes TraceBack/TraceForward, and command listing comes via the
	// shell-oriented helper below.
	for _, c := range db.ProvenanceCommands() {
		out = append(out, provLine{id: c.ID, text: c.Text})
	}
	return out
}

func run(db *scidb.DB, stmt string) error {
	res, err := db.Exec(stmt)
	if err != nil {
		return err
	}
	if res.Array != nil {
		fmt.Print(scidb.Render(res.Array))
		fmt.Printf("(%d cells)\n", res.Array.Count())
		return nil
	}
	fmt.Println(res.Msg)
	return nil
}
