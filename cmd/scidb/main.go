// Command scidb is an interactive AQL shell over an in-process engine or a
// remote session server.
//
//	scidb                         # REPL on stdin
//	scidb -c 'statement'          # run one statement
//	scidb -f script.aql           # run a statement-per-line script
//	scidb -grid 2                 # attach a 2-node in-process cluster (EXPLAIN
//	                              # ANALYZE then shows per-node breakdowns)
//	scidb -connect 127.0.0.1:7101 # client session against scidb-server
//	scidb -connect 127.0.0.1:7101 -namespace lsst -batch
//
// Shell commands: \l lists arrays, \d NAME describes one, \prov shows the
// provenance log, \metrics dumps the metrics registry, \queries lists live
// statements (SHOW QUERIES; works over -connect too), \q quits.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"scidb"
	"scidb/internal/cluster"
	"scidb/internal/introspect"
	"scidb/internal/obs"
	"scidb/internal/session"
)

func main() {
	cmd := flag.String("c", "", "execute one statement and exit")
	file := flag.String("f", "", "execute a script file (one statement per line)")
	grid := flag.Int("grid", 0, "attach an in-process shared-nothing grid of N worker nodes (0 = none)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /debug/pprof on this address (empty disables)")
	slowQuery := flag.Duration("slow-query", 0, "print the profile tree of statements slower than this (0 disables)")
	connect := flag.String("connect", "", "run against a scidb-server session endpoint (host:port) instead of in-process")
	namespace := flag.String("namespace", "", "tenant namespace for -connect (empty: the server default)")
	batch := flag.Bool("batch", false, "submit -connect statements at batch priority (default interactive)")
	flag.Parse()

	if *connect != "" {
		pr := session.Interactive
		if *batch {
			pr = session.Batch
		}
		r := &remote{addr: *connect, opts: session.ClientOptions{
			Name: "scidb-shell", Namespace: *namespace, Priority: pr,
		}}
		defer r.close()
		runMain(*cmd, *file, nil, r.exec)
		return
	}

	db := scidb.Open()
	if *grid > 0 {
		tr := cluster.NewLocal(*grid)
		defer tr.Close()
		db.AttachCluster(cluster.NewCoordinator(tr, 0))
	}
	if *slowQuery > 0 {
		db.SetSlowQuery(*slowQuery, os.Stderr)
	}
	if *metricsAddr != "" {
		obs.RegisterProcessMetrics(scidb.Metrics())
		if _, err := obs.Serve(*metricsAddr, scidb.Metrics()); err != nil {
			fmt.Fprintln(os.Stderr, "metrics listen:", err)
			os.Exit(1)
		}
	}
	runMain(*cmd, *file, db, func(stmt string) error { return run(db, stmt) })
}

// runMain dispatches -c / -f / REPL over either execution path. db is nil
// in -connect mode (shell introspection commands need the local engine).
func runMain(cmd, file string, db *scidb.DB, exec func(string) error) {
	switch {
	case cmd != "":
		if err := exec(cmd); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			stmt := strings.TrimSpace(sc.Text())
			if stmt == "" || strings.HasPrefix(stmt, "--") {
				continue
			}
			if err := exec(stmt); err != nil {
				fmt.Fprintf(os.Stderr, "%s:%d: %v\n", file, line, err)
				os.Exit(1)
			}
		}
	default:
		repl(db, exec)
	}
}

// remote runs statements through a session client, redialing once per
// statement when the connection drops (server restart, drain, network).
type remote struct {
	addr string
	opts session.ClientOptions
	c    *session.Client
}

func (r *remote) client() (*session.Client, error) {
	if r.c != nil {
		return r.c, nil
	}
	c, err := session.Dial(r.addr, r.opts)
	if err != nil {
		return nil, err
	}
	r.c = c
	return c, nil
}

func (r *remote) close() {
	if r.c != nil {
		r.c.Close()
	}
}

func (r *remote) exec(stmt string) error {
	for attempt := 0; ; attempt++ {
		c, err := r.client()
		if err != nil {
			return fmt.Errorf("connect %s: %w", r.addr, err)
		}
		res, err := c.Exec(stmt)
		if err == nil {
			if res.Array != nil {
				fmt.Print(scidb.Render(res.Array))
				fmt.Printf("(%d cells)\n", res.Array.Count())
			} else {
				fmt.Println(res.Msg)
			}
			return nil
		}
		if errors.Is(err, session.ErrConnClosed) && attempt == 0 {
			fmt.Fprintf(os.Stderr, "scidb: connection to %s lost; reconnecting\n", r.addr)
			r.c = nil
			continue
		}
		return err
	}
}

func repl(db *scidb.DB, exec func(string) error) {
	fmt.Printf("SciDB-Go shell (%s)\n", introspect.Build())
	fmt.Println("AQL statements, \\l, \\d NAME, \\df, \\prov, \\metrics, \\queries, \\q")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("scidb> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "\\queries" {
			// SHOW QUERIES is a statement, so it works on both paths — over
			// -connect it lists the server's registry, not ours.
			if err := exec("show queries"); err != nil {
				fmt.Println("error:", err)
			}
			continue
		}
		if db == nil && strings.HasPrefix(line, "\\") && line != "\\q" {
			// Introspection commands read the in-process engine; over
			// -connect, use AQL statements instead.
			fmt.Println("shell commands are not available over -connect")
			continue
		}
		switch {
		case line == "":
			continue
		case line == "\\q":
			return
		case line == "\\l":
			for _, n := range db.Names() {
				fmt.Println(" ", n)
			}
			continue
		case strings.HasPrefix(line, "\\d "):
			name := strings.TrimSpace(strings.TrimPrefix(line, "\\d "))
			if a, err := db.Array(name); err == nil {
				fmt.Println(" ", a.Schema.String())
				fmt.Printf("  %d cells present\n", a.Count())
			} else if u, err := db.Updatable(name); err == nil {
				fmt.Println(" ", u.FullSchema().String(), "(updatable)")
				fmt.Printf("  history high-water mark: %d\n", u.History())
			} else {
				fmt.Println("  unknown array", name)
			}
			continue
		case line == "\\df":
			for _, n := range db.UDFNames() {
				fmt.Println(" ", n)
			}
			continue
		case line == "\\prov":
			// The provenance log of this session's derivations.
			for _, c := range provCommands(db) {
				fmt.Printf("  [%d] %s\n", c.id, c.text)
			}
			continue
		case line == "\\metrics":
			printMetrics(db)
			continue
		}
		if err := exec(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

type provLine struct {
	id   int64
	text string
}

func provCommands(db *scidb.DB) []provLine {
	var out []provLine
	// Reach the log through a trace of a nonexistent element is not
	// possible; use the exported accessor pattern instead: the DB facade
	// exposes TraceBack/TraceForward, and command listing comes via the
	// shell-oriented helper below.
	for _, c := range db.ProvenanceCommands() {
		out = append(out, provLine{id: c.ID, text: c.Text})
	}
	return out
}

// printMetrics dumps this process's registry in Prometheus text form; on a
// grid it additionally fans the "metrics" op out and prints every node's
// samples with their node labels (the cluster-wide aggregation).
func printMetrics(db *scidb.DB) {
	scidb.Metrics().WriteProm(os.Stdout)
	co := db.Cluster()
	if co == nil {
		return
	}
	samples, err := co.Metrics()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, s := range samples {
		fmt.Printf("%s{%s} %g\n", s.Name, s.Label, s.Value)
	}
}

func run(db *scidb.DB, stmt string) error {
	res, err := db.Exec(stmt)
	if err != nil {
		return err
	}
	if res.Array != nil {
		fmt.Print(scidb.Render(res.Array))
		fmt.Printf("(%d cells)\n", res.Array.Count())
		return nil
	}
	fmt.Println(res.Msg)
	return nil
}
