// Command scidb-load is the streaming bulk loader front end (§2.8/§2.9).
// It opens an external file through an in-situ adaptor and either converts
// it to the self-describing SDF format or loads it into a running grid of
// scidb-server nodes, splitting the stream into site substreams.
//
// Grid loads run the parallel partition-on-load pipeline: the input is
// sharded by the adaptor, shards are parsed concurrently, and chunks are
// encoded (zone maps included) on the loader before being shipped in
// batches to their owning workers. -parallelism caps the shard/parse
// concurrency (0 = one shard per core); -batch sets how many chunks a
// site accumulates before a batch ships (0 = adaptive: sized from the
// transport's observed round-trip time, 16 on fast links up to 256 on
// slow ones; larger batches amortize more round-trips at the cost of
// loader memory).
//
//	scidb-load -in data.csv -adaptor csv -out data.sdf
//	scidb-load -in data.ncl -adaptor ncl -array sky -nodes 127.0.0.1:7101,127.0.0.1:7102
//	scidb-load -in data.csv -array sky -nodes host1:7101,host2:7101 -parallelism 8 -batch 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scidb/internal/array"
	"scidb/internal/cluster"
	"scidb/internal/insitu"
	"scidb/internal/loader"
	"scidb/internal/partition"
)

func main() {
	in := flag.String("in", "", "input file")
	adaptorName := flag.String("adaptor", "csv", "input adaptor: csv, ncl, sdf")
	out := flag.String("out", "", "convert: write this SDF file and exit")
	arrayName := flag.String("array", "", "grid load: target array name")
	nodes := flag.String("nodes", "", "grid load: comma-separated worker addresses")
	splitDim := flag.Int("splitdim", 0, "grid load: dimension index to block-partition on")
	parallelism := flag.Int("parallelism", 0, "grid load: shard/parse concurrency (0 = one shard per core)")
	batch := flag.Int("batch", 0, "grid load: chunks per shipped batch (0 = adaptive from observed RTT, 16..256)")
	wireStats := flag.Bool("wire-stats", false, "grid load: print transport wire counters after the load")
	flag.Parse()

	if *in == "" {
		fail("need -in")
	}
	ad, err := insitu.ByName(*adaptorName)
	if err != nil {
		fail("%v", err)
	}
	ds, err := ad.Open(*in)
	if err != nil {
		fail("open %s: %v", *in, err)
	}
	defer ds.Close()

	switch {
	case *out != "":
		a, err := insitu.Materialize(ds)
		if err != nil {
			fail("materialize: %v", err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fail("create %s: %v", *out, err)
		}
		defer f.Close()
		if err := insitu.WriteSDF(f, a); err != nil {
			fail("write sdf: %v", err)
		}
		fmt.Printf("converted %d cells from %s to %s\n", a.Count(), *in, *out)
	case *nodes != "":
		if *arrayName == "" {
			fail("grid load needs -array")
		}
		addrs := strings.Split(*nodes, ",")
		tr, err := cluster.DialTCP(addrs)
		if err != nil {
			fail("dial: %v", err)
		}
		defer tr.Close()
		co := cluster.NewCoordinator(tr, 0)
		schema := ds.Schema().Clone()
		schema.Name = *arrayName
		high := schema.Dims[*splitDim].High
		if high == array.Unbounded {
			high = 1 << 20
		}
		scheme := partition.Block{Nodes: len(addrs), SplitDim: *splitDim, High: high}
		if err := co.Create(*arrayName, schema, scheme); err != nil {
			fail("create: %v", err)
		}
		box := array.WholeBox(schemaBounded(schema))
		dest := loader.ClusterDest{Co: co, Array: *arrayName}
		stats, err := loader.LoadParallel(ds, box, schema, scheme, dest, loader.Options{
			Parallelism: *parallelism,
			BatchChunks: *batch,
		})
		if err != nil {
			fail("load: %v", err)
		}
		fmt.Printf("loaded %d cells into %s across %d nodes (per-site: %v)\n",
			stats.Records, *arrayName, len(addrs), stats.PerSite)
		if *wireStats {
			if ts, ok := co.TransportStats(); ok {
				fmt.Printf("wire: %d calls, %d frames out / %d in, %d bytes out / %d in, round-trip %v\n",
					ts.Calls, ts.FramesOut, ts.FramesIn, ts.BytesOut, ts.BytesIn, ts.RoundTrip())
			}
		}
	default:
		fail("need -out (convert) or -nodes (grid load)")
	}
}

// schemaBounded pins unbounded dims so WholeBox covers a large range.
func schemaBounded(s *array.Schema) *array.Schema {
	cp := s.Clone()
	for i := range cp.Dims {
		if cp.Dims[i].High == array.Unbounded {
			cp.Dims[i].High = 1 << 40
		}
	}
	return cp
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
