// Command scidb-bench runs the paper-reproduction experiment suite: one
// experiment per figure and quantified claim (see DESIGN.md and
// EXPERIMENTS.md). With no flags it runs everything at full size.
//
//	scidb-bench [-exp ID[,ID...]] [-quick] [-list] [-cache-bytes N] [-parallelism N] [-readahead N]
//	scidb-bench -exp NET [-wire-compress gzip] [-call-timeout 30s] [-net-addrs host1:7101,host2:7101,host3:7101]
//	scidb-bench -serve-addr host:port -serve-clients 256   # open-loop load against a live session server
//	scidb-bench -serve-addr host:port -serve-smoke 8       # CI: scripted concurrent client sessions
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scidb/internal/exec"
	"scidb/internal/experiments"
	"scidb/internal/obs"
)

func main() {
	exp := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	list := flag.Bool("list", false, "list experiments and exit")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "buffer-pool budget for cache-aware experiments")
	readahead := flag.Int("readahead", 4, "scan prefetch depth for the ENC experiment (0 disables)")
	parallelism := flag.Int("parallelism", 0, "chunk-parallel worker bound (1 = serial, 0 = NumCPU)")
	wireCompress := flag.String("wire-compress", "", "wire codec for the NET experiment's compressed row (default gzip)")
	callTimeout := flag.Duration("call-timeout", 0, "per-call deadline for NET transports (0 = none)")
	netAddrs := flag.String("net-addrs", "", "comma-separated scidb-server addresses: run NET against real sockets instead of in-process listeners")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof while experiments run (profile the suite live)")
	serveAddr := flag.String("serve-addr", "", "session-server address for -serve-clients / -serve-smoke")
	serveClients := flag.Int("serve-clients", 0, "open-loop load: this many concurrent client sessions against -serve-addr")
	serveStmts := flag.Int("serve-stmts", 2048, "open-loop load: total statements to offer")
	serveGap := flag.Duration("serve-gap", time.Millisecond, "open-loop load: arrival spacing")
	serveSmoke := flag.Int("serve-smoke", 0, "run this many scripted concurrent clients against -serve-addr and exit")
	benchJSON := flag.String("bench-json", "", "directory to write BENCH_<ID>.json snapshots (wall time, bytes, metric deltas) per experiment")
	flag.Parse()

	if *metricsAddr != "" {
		obs.RegisterProcessMetrics(obs.Default())
		if _, err := obs.Serve(*metricsAddr, obs.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "metrics listen:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n", *metricsAddr)
	}

	experiments.SetCacheBytes(*cacheBytes)
	experiments.SetReadahead(*readahead)
	exec.SetParallelism(*parallelism)
	if *wireCompress != "" {
		experiments.SetWireCompress(*wireCompress)
	}
	experiments.SetCallTimeout(*callTimeout)
	if *netAddrs != "" {
		var addrs []string
		for _, a := range strings.Split(*netAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		experiments.SetNetAddrs(addrs)
	}

	if *serveSmoke > 0 || *serveClients > 0 {
		if *serveAddr == "" {
			fmt.Fprintln(os.Stderr, "-serve-clients/-serve-smoke need -serve-addr host:port")
			os.Exit(2)
		}
		if *serveSmoke > 0 {
			if err := experiments.ServeSmoke(os.Stdout, *serveAddr, *serveSmoke); err != nil {
				fmt.Fprintln(os.Stderr, "serve-smoke failed:", err)
				os.Exit(1)
			}
		}
		if *serveClients > 0 {
			if err := experiments.ServeLoad(os.Stdout, *serveAddr, *serveClients, *serveStmts, *serveGap); err != nil {
				fmt.Fprintln(os.Stderr, "serve-load failed:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	var runs []*experiments.Experiment
	if *exp == "" {
		runs = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			runs = append(runs, e)
		}
	}
	if *benchJSON != "" {
		if err := os.MkdirAll(*benchJSON, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bench-json:", err)
			os.Exit(1)
		}
	}
	for _, e := range runs {
		var err error
		if *benchJSON != "" {
			err = experiments.RunJSON(os.Stdout, e, *quick, *benchJSON)
		} else {
			err = e.Run(os.Stdout, *quick)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
