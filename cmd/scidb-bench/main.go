// Command scidb-bench runs the paper-reproduction experiment suite: one
// experiment per figure and quantified claim (see DESIGN.md and
// EXPERIMENTS.md). With no flags it runs everything at full size.
//
//	scidb-bench [-exp ID[,ID...]] [-quick] [-list] [-cache-bytes N] [-parallelism N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scidb/internal/exec"
	"scidb/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	list := flag.Bool("list", false, "list experiments and exit")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "buffer-pool budget for cache-aware experiments")
	parallelism := flag.Int("parallelism", 0, "chunk-parallel worker bound (1 = serial, 0 = NumCPU)")
	flag.Parse()

	experiments.SetCacheBytes(*cacheBytes)
	exec.SetParallelism(*parallelism)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	var runs []*experiments.Experiment
	if *exp == "" {
		runs = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			runs = append(runs, e)
		}
	}
	for _, e := range runs {
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
