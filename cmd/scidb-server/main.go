// Command scidb-server runs one shared-nothing grid worker (§2.7) and the
// multi-tenant session front end on the same listener. A coordinator
// (cmd/scidb-load, the examples, or library users via cluster.DialTCP)
// connects over TCP and drives it with the multiplexed binary wire
// protocol; client sessions (cmd/scidb -connect, session.Dial) speak the
// session protocol; legacy gob clients are still accepted (the server
// sniffs the protocol per connection).
//
//	scidb-server -listen 127.0.0.1:7101 -id 0
//	scidb-server -listen 127.0.0.1:7101 -id 0 -persist -data-dir /var/scidb -cache-bytes 268435456 -readahead 4
//	scidb-server -listen 127.0.0.1:7101 -id 0 -parallelism 8 -wire-compress gzip -call-timeout 30s
//	scidb-server -listen 127.0.0.1:7101 -id 0 -metrics-addr 127.0.0.1:9101 -slow-query 250ms
//	scidb-server -listen 127.0.0.1:7101 -slots 8 -queue-depth 64 -idle-timeout 5m -drain-timeout 30s
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scidb/internal/cluster"
	"scidb/internal/exec"
	"scidb/internal/introspect"
	"scidb/internal/obs"
	"scidb/internal/session"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7101", "address to listen on")
	id := flag.Int("id", 0, "node id")
	persist := flag.Bool("persist", false, "back partitions with the bucket store instead of plain arrays")
	dataDir := flag.String("data-dir", "", "bucket directory root for -persist (empty: in-memory buckets)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "decoded-bucket buffer pool budget for -persist (0 disables)")
	readahead := flag.Int("readahead", 0, "scan prefetch depth for -persist: buckets loaded ahead of a scan (0 disables)")
	heatHalfLife := flag.Duration("heat-half-life", 0, "decay half-life of the per-chunk access-heat tracker the rebalancer polls (0 = 30s default)")
	parallelism := flag.Int("parallelism", 0, "chunk-parallel worker bound (1 = serial, 0 = NumCPU)")
	wireCompress := flag.String("wire-compress", "", "response-frame codec (none|rle|delta|gzip|auto; empty mirrors each client)")
	callTimeout := flag.Duration("call-timeout", 0, "per-connection I/O deadline for hello reads and response writes (0 = none)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /debug/pprof on this address (empty disables)")
	slowQuery := flag.Duration("slow-query", 0, "log the profile tree of requests slower than this (0 disables)")
	slots := flag.Int("slots", 8, "session statements executing concurrently")
	queueDepth := flag.Int("queue-depth", 64, "queued session statements per priority class before busy rejection")
	idleTimeout := flag.Duration("idle-timeout", 0, "close client sessions idle this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "SIGTERM: wait this long for in-flight session statements before canceling them")
	flag.Parse()

	introspect.Init()
	exec.SetParallelism(*parallelism)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	opts := cluster.WorkerOptions{HeatHalfLife: *heatHalfLife}
	if *persist {
		opts = cluster.WorkerOptions{Persist: true, Dir: *dataDir, CacheBytes: *cacheBytes,
			Readahead: *readahead, HeatHalfLife: *heatHalfLife}
	}
	w := cluster.NewWorkerWithOptions(*id, opts)
	if *slowQuery > 0 {
		w.SetSlowQuery(*slowQuery, os.Stderr)
	}
	sess := session.NewServer(session.ServerOptions{
		Slots:       *slots,
		QueueDepth:  *queueDepth,
		IdleTimeout: *idleTimeout,
		Registry:    w.Registry(),
	})
	srv, err := cluster.NewServer(w, cluster.ServeOptions{
		Codec:     *wireCompress,
		IOTimeout: *callTimeout,
		Session:   sess.ServeConn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "server:", err)
		os.Exit(1)
	}
	var metricsSrv interface{ Close() error }
	if *metricsAddr != "" {
		obs.RegisterProcessMetrics(w.Registry())
		introspect.AttachMetrics(w.Registry())
		ms, err := obs.Serve(*metricsAddr, w.Registry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics listen:", err)
			os.Exit(1)
		}
		metricsSrv = ms
		fmt.Printf("scidb-server node %d metrics on http://%s/metrics (pprof under /debug/pprof/)\n", *id, *metricsAddr)
	}
	mode := "array partitions"
	if *persist {
		mode = fmt.Sprintf("store-backed partitions (cache %d bytes, readahead %d)", *cacheBytes, *readahead)
	}
	codec := *wireCompress
	if codec == "" {
		codec = "mirror-client"
	}
	fmt.Printf("scidb-server %s\n", introspect.Build())
	fmt.Printf("scidb-server node %d listening on %s, %s, parallelism %d, wire codec %s\n",
		*id, ln.Addr(), mode, exec.Parallelism(), codec)
	fmt.Printf("scidb-server sessions: %d slots, queue depth %d, idle timeout %v\n",
		*slots, *queueDepth, *idleTimeout)
	introspect.Emit(introspect.EvServerStart, *id, "",
		fmt.Sprintf("listening on %s (%s)", ln.Addr(), introspect.Build()))
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("scidb-server: shutting down, draining client sessions and in-flight requests")
		// Client sessions drain first: no new sessions, in-flight
		// statements get -drain-timeout, stragglers are canceled.
		if sess.Shutdown(*drainTimeout) {
			fmt.Println("scidb-server: session drain clean")
		} else {
			fmt.Println("scidb-server: session drain forced (canceled stragglers)")
		}
		srv.Shutdown() // close listener, wait for in-flight requests, drop conns
	}()
	// Serve returns nil once Shutdown closes the listener; every in-flight
	// request has been answered by then, so the stores can flush safely.
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if err := w.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}
	fmt.Println("scidb-server: stopped")
}
