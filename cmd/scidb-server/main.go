// Command scidb-server runs one shared-nothing grid worker (§2.7). A
// coordinator (cmd/scidb-load, the examples, or library users via
// cluster.DialTCP) connects over TCP and drives it with gob-framed
// messages.
//
//	scidb-server -listen 127.0.0.1:7101 -id 0
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"scidb/internal/cluster"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7101", "address to listen on")
	id := flag.Int("id", 0, "node id")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Printf("scidb-server node %d listening on %s\n", *id, ln.Addr())
	w := cluster.NewWorker(*id)
	if err := cluster.Serve(ln, w); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
