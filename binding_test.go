package scidb

import (
	"testing"
)

// TestBindingFullSurface exercises every fluent combinator end to end,
// verifying it against the equivalent AQL text (the two bindings must be
// indistinguishable at the executor).
func TestBindingFullSurface(t *testing.T) {
	db := Open()
	fill4x4(t, db, "A")

	check := func(name string, q Query, aql string) {
		t.Helper()
		got, err := db.Run(q)
		if err != nil {
			t.Fatalf("%s (go): %v", name, err)
		}
		want, err := db.Exec(aql)
		if err != nil {
			t.Fatalf("%s (aql): %v", name, err)
		}
		if got.Array.Count() != want.Array.Count() {
			t.Fatalf("%s: go %d cells, aql %d cells", name, got.Array.Count(), want.Array.Count())
		}
		want.Array.Iter(func(c Coord, cell Cell) bool {
			g, ok := got.Array.At(c)
			if !ok {
				t.Fatalf("%s: cell %v missing in go result", name, c)
			}
			for i := range cell {
				if cell[i].String() != g[i].String() {
					t.Fatalf("%s: cell %v attr %d: go %v, aql %v", name, c, i, g[i], cell[i])
				}
			}
			return true
		})
	}

	check("odd-subsample",
		Scan("A").SubsampleOdd("x"),
		"subsample(A, odd(x))")
	check("window",
		Scan("A").Window([]int64{1, 1}, Avg("v")),
		"window(A, [1, 1], avg(v))")
	check("min-max-stdev",
		Scan("A").Aggregate([]string{"x"}, Min("v"), Max("v"), Stdev("v"), Avg("v")),
		"aggregate(A, {x}, min(v), max(v), stdev(v), avg(v))")
	// Method chaining is left-associative, so the AQL twin needs explicit
	// parentheses to express the same tree.
	check("arith-kitchen-sink",
		Scan("A").Apply("e",
			Attr("v").Add(IntLit(1)).Sub(IntLit(2)).Mul(IntLit(3)).Div(IntLit(2)).Mod(IntLit(7))),
		"apply(A, e = ((((v + 1) - 2) * 3) / 2) % 7)")
	check("logic-kitchen-sink",
		Scan("A").Filter(
			Attr("v").Ne(IntLit(4)).And(Attr("v").Lt(IntLit(12))).
				Or(Attr("v").Ge(IntLit(15))).And(Attr("v").Le(IntLit(16)).Not().Not())),
		"filter(A, (v != 4 and v < 12 or v >= 15) and not not v <= 16)")
	check("cross",
		Scan("A").SubsampleEven("x").SubsampleEven("y").Cross(Scan("A").Subsample("x", "=", 1).Subsample("y", "=", 1)),
		"cross(subsample(A, even(x) and even(y)), subsample(A, x = 1 and y = 1))")
	check("adddim-remdim",
		Scan("A").AddDim("layer").RemDim("layer"),
		"remdim(adddim(A, layer), layer)")
	check("concat",
		Scan("A").Concat(Scan("A"), "x"),
		"concat(A, A, x)")

	// String/null/uncertain literals through Apply.
	res, err := db.Run(Scan("A").
		Apply("s", StrLit("tag")).
		Apply("n", NullLit()).
		Apply("u", UncertainLit(5, 0.5)))
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := res.Array.At(Coord{1, 1})
	if cell[1].Str != "tag" || !cell[2].Null || cell[3].Sigma != 0.5 {
		t.Errorf("literals = %v", cell)
	}
}

func TestBindingVersionAndQ(t *testing.T) {
	db := Open()
	if _, err := db.Exec("define updatable array U (v = float) (x)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("create array M as U [4]"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("insert into M [1] values (10)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("create version side from M"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(Version("M", "side").Q())
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := res.Array.At(Coord{1})
	if !ok || cell[0].Float != 10 {
		t.Errorf("version read = %v,%v", cell, ok)
	}
	if _, err := db.Run(Version("M", "ghost")); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestBindingCallUDFErrorPropagation(t *testing.T) {
	db := Open()
	fill4x4(t, db, "A")
	bad := CallUDF("f", Expr{err: errSentinel})
	if _, err := db.Run(Scan("A").Apply("x", bad)); err == nil {
		t.Error("arg error swallowed")
	}
	// Window/Cross/Concat propagate prior errors.
	broken := Scan("A").Subsample("x", "~", 0)
	if _, err := db.Run(broken.Window([]int64{1, 1}, Sum("v"))); err == nil {
		t.Error("window swallowed error")
	}
	if _, err := db.Run(Scan("A").Cross(broken)); err == nil {
		t.Error("cross swallowed right error")
	}
	if _, err := db.Run(Scan("A").Concat(broken, "x")); err == nil {
		t.Error("concat swallowed right error")
	}
	if _, err := db.Run(Scan("A").Cjoin(broken, Attr("v").Eq(IntLit(1)))); err == nil {
		t.Error("cjoin swallowed right error")
	}
	if _, err := db.Run(Scan("A").Reshape([]string{"x", "y"}, []string{"i"}, []int64{16, 1})); err == nil {
		t.Error("reshape arity mismatch accepted")
	}
}

var errSentinel = errFor("sentinel")

type errFor string

func (e errFor) Error() string { return string(e) }
