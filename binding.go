package scidb

import (
	"fmt"

	"scidb/internal/parser"
)

// Query is the fluent Go language binding (§2.4): it builds the same parse
// tree the AQL text parser produces, "fit[ting] large array manipulation
// cleanly into the target language using the control structures of the
// language in question" — no ODBC/JDBC-style data sublanguage.
type Query struct {
	expr parser.ArrayExpr
	err  error
}

// Scan starts a query from a stored array.
func Scan(name string) Query { return Query{expr: &parser.Ref{Name: name}} }

// Version starts a query from a named version of an updatable array.
func Version(arrayName, versionName string) Query {
	return Query{expr: &parser.VersionExpr{Array: arrayName, Name: versionName}}
}

// stmt finalizes the query into a statement.
func (q Query) stmt() (parser.Stmt, error) {
	if q.err != nil {
		return nil, q.err
	}
	return &parser.Query{Expr: q.expr}, nil
}

// Q returns the query itself (readability sugar for db.Run(... .Q())).
func (q Query) Q() Query { return q }

// StoreInto turns the query into a STORE statement builder.
func (q Query) StoreInto(target string) Store {
	return Store{expr: q.expr, target: target, err: q.err}
}

// Store is a terminal STORE statement.
type Store struct {
	expr   parser.ArrayExpr
	target string
	err    error
}

// Run executes the store.
func (s Store) Run(db *DB) (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	return db.core.Run(&parser.Store{Expr: s.expr, Target: s.target})
}

func (q Query) fail(format string, args ...interface{}) Query {
	if q.err == nil {
		q.err = fmt.Errorf(format, args...)
	}
	return q
}

// Subsample adds a dimension comparison conjunct (op in <,<=,>,>=,=,!=).
func (q Query) Subsample(dim, op string, v int64) Query {
	if q.err != nil {
		return q
	}
	switch op {
	case "<", "<=", ">", ">=", "=", "!=":
	default:
		return q.fail("scidb: bad subsample operator %q", op)
	}
	return q.mergeSubsample(parser.DimCond{Dim: dim, Op: op, Value: v})
}

// SubsampleEven adds the paper's even(dim) conjunct.
func (q Query) SubsampleEven(dim string) Query {
	if q.err != nil {
		return q
	}
	return q.mergeSubsample(parser.DimCond{Dim: dim, Op: "even"})
}

// SubsampleOdd adds odd(dim).
func (q Query) SubsampleOdd(dim string) Query {
	if q.err != nil {
		return q
	}
	return q.mergeSubsample(parser.DimCond{Dim: dim, Op: "odd"})
}

// mergeSubsample folds consecutive subsample calls into one conjunction,
// matching the operator's conjunction-of-per-dimension-conditions contract.
func (q Query) mergeSubsample(c parser.DimCond) Query {
	if ss, ok := q.expr.(*parser.SubsampleExpr); ok {
		ss.Pred = append(ss.Pred, c)
		return q
	}
	q.expr = &parser.SubsampleExpr{In: q.expr, Pred: []parser.DimCond{c}}
	return q
}

// Filter applies a value predicate.
func (q Query) Filter(pred Expr) Query {
	if q.err != nil {
		return q
	}
	if pred.err != nil {
		q.err = pred.err
		return q
	}
	q.expr = &parser.FilterExpr{In: q.expr, Pred: pred.node}
	return q
}

// Aggregate groups on dimensions and applies aggregate specs.
func (q Query) Aggregate(groupDims []string, aggs ...AggSpec) Query {
	if q.err != nil {
		return q
	}
	if len(aggs) == 0 {
		return q.fail("scidb: aggregate needs at least one aggregate")
	}
	node := &parser.AggregateExpr{In: q.expr, GroupDims: groupDims}
	for _, a := range aggs {
		node.Aggs = append(node.Aggs, parser.AggSpec(a))
	}
	q.expr = node
	return q
}

// AggSpec names one aggregate: function, attribute ("*" = first), alias.
type AggSpec struct {
	Func string
	Attr string
	As   string
}

// Sum builds sum(attr).
func Sum(attr string) AggSpec { return AggSpec{Func: "sum", Attr: attr} }

// Count builds count(attr).
func Count(attr string) AggSpec { return AggSpec{Func: "count", Attr: attr} }

// Avg builds avg(attr).
func Avg(attr string) AggSpec { return AggSpec{Func: "avg", Attr: attr} }

// Min builds min(attr).
func Min(attr string) AggSpec { return AggSpec{Func: "min", Attr: attr} }

// Max builds max(attr).
func Max(attr string) AggSpec { return AggSpec{Func: "max", Attr: attr} }

// Stdev builds stdev(attr).
func Stdev(attr string) AggSpec { return AggSpec{Func: "stdev", Attr: attr} }

// Agg builds a named (possibly user-defined) aggregate.
func Agg(fn, attr string) AggSpec { return AggSpec{Func: fn, Attr: attr} }

// Sjoin joins with another query on dimension pairs "l=r".
func (q Query) Sjoin(right Query, onLeft, onRight []string) Query {
	if q.err != nil {
		return q
	}
	if right.err != nil {
		q.err = right.err
		return q
	}
	if len(onLeft) != len(onRight) || len(onLeft) == 0 {
		return q.fail("scidb: sjoin needs matching non-empty dimension lists")
	}
	node := &parser.SjoinExpr{L: q.expr, R: right.expr}
	for i := range onLeft {
		node.On = append(node.On, parser.JoinPair{Left: onLeft[i], Right: onRight[i]})
	}
	q.expr = node
	return q
}

// Cjoin joins with another query on a value predicate.
func (q Query) Cjoin(right Query, pred Expr) Query {
	if q.err != nil {
		return q
	}
	if right.err != nil {
		q.err = right.err
		return q
	}
	if pred.err != nil {
		q.err = pred.err
		return q
	}
	q.expr = &parser.CjoinExpr{L: q.expr, R: right.expr, Pred: pred.node}
	return q
}

// Apply computes a new attribute per cell.
func (q Query) Apply(name string, e Expr) Query {
	if q.err != nil {
		return q
	}
	if e.err != nil {
		q.err = e.err
		return q
	}
	if ap, ok := q.expr.(*parser.ApplyExpr); ok {
		ap.Names = append(ap.Names, name)
		ap.Exprs = append(ap.Exprs, e.node)
		return q
	}
	q.expr = &parser.ApplyExpr{In: q.expr, Names: []string{name}, Exprs: []parser.ValExpr{e.node}}
	return q
}

// Project keeps only the named attributes.
func (q Query) Project(attrs ...string) Query {
	if q.err != nil {
		return q
	}
	if len(attrs) == 0 {
		return q.fail("scidb: project needs attributes")
	}
	q.expr = &parser.ProjectExpr{In: q.expr, Attrs: attrs}
	return q
}

// Reshape relinearizes into new dimensions; order lists input dims slowest
// first, dims are name->high pairs applied in order.
func (q Query) Reshape(order []string, names []string, highs []int64) Query {
	if q.err != nil {
		return q
	}
	if len(names) != len(highs) {
		return q.fail("scidb: reshape names/highs mismatch")
	}
	node := &parser.ReshapeExpr{In: q.expr, Order: order}
	for i := range names {
		node.NewDims = append(node.NewDims, parser.NewDim{Name: names[i], High: highs[i]})
	}
	q.expr = node
	return q
}

// Regrid coarsens by strides, aggregating each block.
func (q Query) Regrid(strides []int64, agg AggSpec) Query {
	if q.err != nil {
		return q
	}
	q.expr = &parser.RegridExpr{In: q.expr, Strides: strides, Agg: parser.AggSpec(agg)}
	return q
}

// Window applies a moving-window aggregate with the given radii.
func (q Query) Window(radius []int64, agg AggSpec) Query {
	if q.err != nil {
		return q
	}
	q.expr = &parser.WindowExpr{In: q.expr, Radius: radius, Agg: parser.AggSpec(agg)}
	return q
}

// Cross takes the cross product with another query.
func (q Query) Cross(right Query) Query {
	if q.err != nil {
		return q
	}
	if right.err != nil {
		q.err = right.err
		return q
	}
	q.expr = &parser.CrossExpr{L: q.expr, R: right.expr}
	return q
}

// Concat appends another query along a dimension.
func (q Query) Concat(right Query, dim string) Query {
	if q.err != nil {
		return q
	}
	if right.err != nil {
		q.err = right.err
		return q
	}
	q.expr = &parser.ConcatExpr{L: q.expr, R: right.expr, Dim: dim}
	return q
}

// AddDim prepends a size-1 dimension.
func (q Query) AddDim(name string) Query {
	if q.err != nil {
		return q
	}
	q.expr = &parser.AddDimExpr{In: q.expr, Name: name}
	return q
}

// RemDim removes an extent-1 dimension.
func (q Query) RemDim(name string) Query {
	if q.err != nil {
		return q
	}
	q.expr = &parser.RemDimExpr{In: q.expr, Name: name}
	return q
}

// --- scalar expression builder ---------------------------------------------

// Expr builds value expressions for Filter, Apply, and Cjoin.
type Expr struct {
	node parser.ValExpr
	err  error
}

// Attr references an attribute (optionally qualified, "B.val").
func Attr(name string) Expr { return Expr{node: &parser.Ident{Name: name}} }

// Dim references a dimension value.
func Dim(name string) Expr { return Expr{node: &parser.Ident{Name: name}} }

// Num is a float literal.
func Num(v float64) Expr { return Expr{node: &parser.Lit{V: parser.Scalar{Num: v}}} }

// IntLit is an integer literal.
func IntLit(v int64) Expr {
	return Expr{node: &parser.Lit{V: parser.Scalar{IsInt: true, Int: v, Num: float64(v)}}}
}

// StrLit is a string literal.
func StrLit(s string) Expr { return Expr{node: &parser.Lit{V: parser.Scalar{IsString: true, Str: s}}} }

// NullLit is a NULL literal.
func NullLit() Expr { return Expr{node: &parser.Lit{V: parser.Scalar{IsNull: true}}} }

// UncertainLit is a float literal with an error bar.
func UncertainLit(v, sigma float64) Expr {
	return Expr{node: &parser.Lit{V: parser.Scalar{Num: v, Sigma: sigma}}}
}

// CallUDF invokes a registered UDF.
func CallUDF(name string, args ...Expr) Expr {
	call := &parser.CallExpr{Name: name}
	for _, a := range args {
		if a.err != nil {
			return Expr{err: a.err}
		}
		call.Args = append(call.Args, a.node)
	}
	return Expr{node: call}
}

func (e Expr) bin(op string, r Expr) Expr {
	if e.err != nil {
		return e
	}
	if r.err != nil {
		return r
	}
	return Expr{node: &parser.BinExpr{Op: op, L: e.node, R: r.node}}
}

// Add is e + r.
func (e Expr) Add(r Expr) Expr { return e.bin("+", r) }

// Sub is e − r.
func (e Expr) Sub(r Expr) Expr { return e.bin("-", r) }

// Mul is e × r.
func (e Expr) Mul(r Expr) Expr { return e.bin("*", r) }

// Div is e ÷ r.
func (e Expr) Div(r Expr) Expr { return e.bin("/", r) }

// Mod is e % r.
func (e Expr) Mod(r Expr) Expr { return e.bin("%", r) }

// Eq is e = r.
func (e Expr) Eq(r Expr) Expr { return e.bin("=", r) }

// Ne is e != r.
func (e Expr) Ne(r Expr) Expr { return e.bin("!=", r) }

// Lt is e < r.
func (e Expr) Lt(r Expr) Expr { return e.bin("<", r) }

// Le is e <= r.
func (e Expr) Le(r Expr) Expr { return e.bin("<=", r) }

// Gt is e > r.
func (e Expr) Gt(r Expr) Expr { return e.bin(">", r) }

// Ge is e >= r.
func (e Expr) Ge(r Expr) Expr { return e.bin(">=", r) }

// And is e and r.
func (e Expr) And(r Expr) Expr { return e.bin("and", r) }

// Or is e or r.
func (e Expr) Or(r Expr) Expr { return e.bin("or", r) }

// Not negates e.
func (e Expr) Not() Expr {
	if e.err != nil {
		return e
	}
	return Expr{node: &parser.NotExpr{E: e.node}}
}
