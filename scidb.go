// Package scidb is a from-scratch Go implementation of the array DBMS
// described in "Requirements for Science Data Bases and SciDB" (CIDR 2009):
// a multi-dimensional nested array data model with structural and
// content-dependent operators, POSTGRES-style extensibility, no-overwrite
// storage with a history dimension, named versions, provenance tracing,
// first-class uncertainty, a shared-nothing grid, in-situ data access, and
// the text (AQL) and Go language bindings that both map to one parse-tree
// command representation.
//
// Quick start:
//
//	db := scidb.Open()
//	db.Exec("define array Remote (s1 = float) (I, J)")
//	db.Exec("create array M as Remote [1024, 1024]")
//	res, _ := db.Run(scidb.Scan("M").
//		Filter(scidb.Attr("s1").Gt(scidb.Num(0.5))).
//		Aggregate([]string{"J"}, scidb.Sum("s1")).Q())
package scidb

import (
	"io"
	"time"

	"scidb/internal/array"
	"scidb/internal/cluster"
	"scidb/internal/core"
	"scidb/internal/obs"
	"scidb/internal/parser"
	"scidb/internal/provenance"
	"scidb/internal/udf"
	"scidb/internal/uncertain"
	"scidb/internal/version"
)

// Re-exported model types: the array data model of §2.1.
type (
	// Value is one attribute value of one cell.
	Value = array.Value
	// Cell is one cell's record.
	Cell = array.Cell
	// Coord addresses a cell.
	Coord = array.Coord
	// Box is a rectangular coordinate region.
	Box = array.Box
	// Schema describes an array type.
	Schema = array.Schema
	// Dimension is one named dimension.
	Dimension = array.Dimension
	// Attribute is one cell-record field.
	Attribute = array.Attribute
	// Array is a physical array instance.
	Array = array.Array
	// Type identifies a scalar or nested attribute type.
	Type = array.Type
	// Result is a statement outcome.
	Result = core.Result
	// Executor is the reusable statement-execution object (prepared
	// statements, cancellation-aware execution) that the REPL, the Go
	// binding, and the session server all share.
	Executor = core.Executor
	// UDF is a registered user-defined function.
	UDF = udf.Func
	// Aggregate is the accumulator interface user-defined aggregates
	// implement (POSTGRES-style, §2.1).
	Aggregate = udf.Aggregate
	// Uncertain is an error-bar value with Gaussian propagation (§2.13).
	Uncertain = uncertain.Value
	// Updatable is a no-overwrite array (§2.5).
	Updatable = version.Updatable
	// VersionTree manages named versions (§2.11).
	VersionTree = version.Tree
	// CellRef identifies a data element for provenance queries (§2.12).
	CellRef = provenance.CellRef
)

// Attribute type constants.
const (
	TInt64   = array.TInt64
	TFloat64 = array.TFloat64
	TString  = array.TString
	TBool    = array.TBool
	TArray   = array.TArray
)

// Unbounded marks a "*" dimension.
const Unbounded = array.Unbounded

// Value constructors.
var (
	// Int builds an int64 value.
	Int = array.Int64
	// Float builds a float64 value.
	Float = array.Float64
	// Str builds a string value.
	Str = array.String64
	// Bool builds a bool value.
	Bool = array.Bool64
	// UncertainFloat builds a value with an error bar.
	UncertainFloat = array.UncertainFloat
	// Null builds a NULL of the given type.
	Null = array.NullValue
	// NestedArray wraps an array as a cell value.
	NestedArray = array.Nested
)

// DB is a SciDB engine instance.
type DB struct {
	core *core.Database
}

// Open creates an empty database.
func Open() *DB { return &DB{core: core.Open()} }

// Exec parses and executes one AQL statement.
func (db *DB) Exec(src string) (*Result, error) { return db.core.Exec(src) }

// Run executes a fluent-binding query. Both Exec and Run feed the same
// parse-tree executor (§2.4's single command representation).
func (db *DB) Run(q Query) (*Result, error) {
	stmt, err := q.stmt()
	if err != nil {
		return nil, err
	}
	return db.core.Run(stmt)
}

// Executor returns the database's default statement executor. NewExecutor
// creates a private one (its prepared statements are invisible to other
// executors — what the session server gives each connection).
func (db *DB) Executor() *Executor { return db.core.Executor() }

// NewExecutor creates a fresh executor over this database.
func (db *DB) NewExecutor() *Executor { return core.NewExecutor(db.core) }

// Array fetches a stored plain array.
func (db *DB) Array(name string) (*Array, error) { return db.core.Array(name) }

// PutArray registers an externally built array.
func (db *DB) PutArray(name string, a *Array) error { return db.core.PutArray(name, a) }

// Updatable fetches a no-overwrite array.
func (db *DB) Updatable(name string) (*Updatable, error) { return db.core.Updatable(name) }

// VersionTree fetches an updatable array's named-version tree.
func (db *DB) VersionTree(name string) (*VersionTree, error) { return db.core.VersionTree(name) }

// Drop removes an array.
func (db *DB) Drop(name string) error { return db.core.Drop(name) }

// Names lists stored arrays.
func (db *DB) Names() []string { return db.core.Names() }

// RegisterUDF adds a user-defined function (§2.3; Go body substitutes for
// the paper's C++ object code — see DESIGN.md).
func (db *DB) RegisterUDF(f *UDF) error { return db.core.Registry().RegisterFunc(f) }

// UDFNames lists registered user-defined functions (the shell's \df).
func (db *DB) UDFNames() []string { return db.core.Registry().Names() }

// RegisterAggregate adds a user-defined aggregate.
func (db *DB) RegisterAggregate(name string, fac func() Aggregate) {
	db.core.Registry().RegisterAggregate(name, udf.AggregateFactory(fac))
}

// ProvenanceCommands lists the provenance log in execution order (the
// shell's \prov command).
func (db *DB) ProvenanceCommands() []*provenance.Command {
	return db.core.Provenance().Commands()
}

// SaveProvenance serializes the command log as JSON lines (provenance must
// outlive processes: §2.6 expects multi-decade support).
func (db *DB) SaveProvenance(w io.Writer) error { return db.core.Provenance().Save(w) }

// TraceBack answers §2.12 requirement 1 for a data element.
func (db *DB) TraceBack(ref CellRef) ([]provenance.Step, error) {
	return db.core.Provenance().TraceBack(ref)
}

// TraceForward answers §2.12 requirement 2 for a data element.
func (db *DB) TraceForward(ref CellRef) ([]CellRef, error) {
	return db.core.Provenance().TraceForward(ref)
}

// ReDerive completes the §2.12 workflow: after the cell at ref has been
// corrected, every downstream element whose value depends on it is
// recomputed via qualified re-runs of the logged commands, touching only
// the affected coordinates. It returns the recomputed elements.
func (db *DB) ReDerive(ref CellRef) ([]CellRef, error) { return db.core.ReDerive(ref) }

// SetClock overrides commit timestamps (deterministic tests/benches).
func (db *DB) SetClock(now func() int64) { db.core.SetClock(now) }

// AttachCluster routes distributed-array DDL, DML, and queries through a
// shared-nothing coordinator (§2.6): non-updatable CREATEs partition
// across the grid, references gather, single aggregates push down.
func (db *DB) AttachCluster(co *cluster.Coordinator) { db.core.AttachCluster(co) }

// Cluster returns the attached coordinator, or nil.
func (db *DB) Cluster() *cluster.Coordinator { return db.core.Cluster() }

// SetSlowQuery arms the slow-statement log: every statement runs traced
// and offenders get their per-operator profile tree written to out.
func (db *DB) SetSlowQuery(threshold time.Duration, out io.Writer) {
	db.core.SetSlowQuery(threshold, out)
}

// Metrics returns the process-default metrics registry (query-latency
// histogram, exec-pool counters, process gauges) for /metrics exporters.
func Metrics() *obs.Registry { return obs.Default() }

// Render draws an array the way the paper's figures do.
func Render(a *Array) string { return array.Render(a) }

// Parse exposes the AQL front end (returns the parse tree representation).
func Parse(src string) (parser.Stmt, error) { return parser.Parse(src) }
