package scidb

import (
	"strings"
	"testing"
)

func fill4x4(t *testing.T, db *DB, name string) {
	t.Helper()
	if _, err := db.Exec("define array T_" + name + " (v = int64) (x, y)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("create array " + name + " as T_" + name + " [4, 4]"); err != nil {
		t.Fatal(err)
	}
	a, err := db.Array(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fill(func(c Coord) Cell { return Cell{Int(c[0] * c[1])} }); err != nil {
		t.Fatal(err)
	}
}

func TestFluentBindingMatchesAQL(t *testing.T) {
	db := Open()
	fill4x4(t, db, "A")

	// Same query through both bindings: they share the parse-tree executor.
	viaText, err := db.Exec("aggregate(filter(A, v > 4), {y}, count(v))")
	if err != nil {
		t.Fatal(err)
	}
	viaGo, err := db.Run(Scan("A").
		Filter(Attr("v").Gt(IntLit(4))).
		Aggregate([]string{"y"}, Count("v")))
	if err != nil {
		t.Fatal(err)
	}
	for y := int64(1); y <= 4; y++ {
		a, aok := viaText.Array.At(Coord{y})
		b, bok := viaGo.Array.At(Coord{y})
		if aok != bok || (aok && a[0].Int != b[0].Int) {
			t.Errorf("y=%d: text=%v,%v go=%v,%v", y, a, aok, b, bok)
		}
	}
}

func TestFluentSubsampleChain(t *testing.T) {
	db := Open()
	fill4x4(t, db, "A")
	res, err := db.Run(Scan("A").SubsampleEven("x").Subsample("y", "<", 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Array.Hwm(0) != 2 || res.Array.Hwm(1) != 2 {
		t.Errorf("bounds = %d x %d", res.Array.Hwm(0), res.Array.Hwm(1))
	}
	cell, ok := res.Array.At(Coord{2, 1}) // orig x=4, y=1 -> 4
	if !ok || cell[0].Int != 4 {
		t.Errorf("cell = %v,%v", cell, ok)
	}
}

func TestFluentApplyProjectStore(t *testing.T) {
	db := Open()
	fill4x4(t, db, "A")
	_, err := Scan("A").
		Apply("double", Attr("v").Mul(IntLit(2))).
		Apply("xc", Dim("x")).
		Project("double").
		StoreInto("B").
		Run(db)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Array("B")
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := b.At(Coord{3, 4})
	if !ok || cell[0].Int != 24 {
		t.Errorf("B[3,4] = %v,%v", cell, ok)
	}
}

func TestFluentJoins(t *testing.T) {
	db := Open()
	_, _ = db.Exec("define array V (val = int64) (x)")
	_, _ = db.Exec("create array L as V [2]")
	_, _ = db.Exec("define array W (val = int64) (y)")
	_, _ = db.Exec("create array R as W [2]")
	for i := int64(1); i <= 2; i++ {
		l, _ := db.Array("L")
		r, _ := db.Array("R")
		_ = l.Set(Coord{i}, Cell{Int(i)})
		_ = r.Set(Coord{i}, Cell{Int(i)})
	}
	// Figure 1 through the Go binding.
	res, err := db.Run(Scan("L").Sjoin(Scan("R"), []string{"x"}, []string{"y"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Array.Count() != 2 {
		t.Errorf("sjoin cells = %d", res.Array.Count())
	}
	// Figure 3 through the Go binding.
	res, err = db.Run(Scan("L").Cjoin(Scan("R"), Attr("L.val").Eq(Attr("R.val"))))
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := res.Array.At(Coord{2, 2})
	if !ok || cell[0].Int != 2 {
		t.Errorf("cjoin[2,2] = %v,%v", cell, ok)
	}
	cell, ok = res.Array.At(Coord{1, 2})
	if !ok || !cell[0].Null {
		t.Errorf("cjoin[1,2] = %v,%v; want NULL", cell, ok)
	}
}

func TestFluentRegridReshape(t *testing.T) {
	db := Open()
	fill4x4(t, db, "A")
	res, err := db.Run(Scan("A").Regrid([]int64{2, 2}, Sum("v")))
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := res.Array.At(Coord{1, 1}) // 1+2+2+4
	if cell[0].Int != 9 {
		t.Errorf("regrid = %v", cell)
	}
	res, err = db.Run(Scan("A").Reshape([]string{"x", "y"}, []string{"i"}, []int64{16}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Array.Count() != 16 {
		t.Errorf("reshape cells = %d", res.Array.Count())
	}
}

func TestFluentErrorPropagation(t *testing.T) {
	db := Open()
	fill4x4(t, db, "A")
	if _, err := db.Run(Scan("A").Subsample("x", "~", 1)); err == nil {
		t.Error("bad operator accepted")
	}
	if _, err := db.Run(Scan("A").Aggregate([]string{"y"})); err == nil {
		t.Error("empty aggregate accepted")
	}
	if _, err := db.Run(Scan("A").Project()); err == nil {
		t.Error("empty project accepted")
	}
	if _, err := db.Run(Scan("A").Sjoin(Scan("A"), []string{"x"}, nil)); err == nil {
		t.Error("mismatched sjoin lists accepted")
	}
	if _, err := db.Run(Scan("Ghost")); err == nil {
		t.Error("unknown array accepted")
	}
	// Error sticks through later combinators.
	q := Scan("A").Subsample("x", "~", 1).Filter(Attr("v").Gt(Num(0)))
	if _, err := db.Run(q); err == nil {
		t.Error("error lost in chain")
	}
}

func TestUDFThroughPublicAPI(t *testing.T) {
	db := Open()
	fill4x4(t, db, "A")
	err := db.RegisterUDF(&UDF{
		Name: "clamp10",
		In:   []Type{TInt64},
		Out:  []Type{TInt64},
		Body: func(args []Value) ([]Value, error) {
			v := args[0].Int
			if v > 10 {
				v = 10
			}
			return []Value{Int(v)}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(Scan("A").Apply("c", CallUDF("clamp10", Attr("v"))))
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := res.Array.At(Coord{4, 4})
	if cell[1].Int != 10 {
		t.Errorf("clamped = %v", cell[1])
	}
}

func TestUserDefinedAggregateThroughPublicAPI(t *testing.T) {
	db := Open()
	fill4x4(t, db, "A")
	db.RegisterAggregate("range", func() Aggregate { return &rangeAgg{} })
	res, err := db.Run(Scan("A").Aggregate(nil, Agg("range", "v")))
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := res.Array.At(Coord{1})
	if cell[0].AsFloat() != 15 { // max 16, min 1
		t.Errorf("range = %v", cell[0])
	}
}

type rangeAgg struct {
	min, max float64
	seen     bool
}

func (a *rangeAgg) Step(v Value) {
	if v.Null {
		return
	}
	x := v.AsFloat()
	if !a.seen || x < a.min {
		a.min = x
	}
	if !a.seen || x > a.max {
		a.max = x
	}
	a.seen = true
}

func (a *rangeAgg) Result() Value {
	if !a.seen {
		return Null(TFloat64)
	}
	return Float(a.max - a.min)
}

func TestRenderThroughPublicAPI(t *testing.T) {
	db := Open()
	fill4x4(t, db, "A")
	a, _ := db.Array("A")
	out := Render(a)
	if !strings.Contains(out, "x\\y") || !strings.Contains(out, "16") {
		t.Errorf("render:\n%s", out)
	}
}

func TestParsePublicAPI(t *testing.T) {
	if _, err := Parse("create array A as T [4]"); err != nil {
		t.Error(err)
	}
	if _, err := Parse("not a statement!!!"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveProvenancePublicAPI(t *testing.T) {
	db := Open()
	fill4x4(t, db, "A")
	if _, err := db.Exec("store regrid(A, [2, 2], sum(v)) into C"); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := db.SaveProvenance(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"regrid"`) {
		t.Errorf("serialized log missing regrid command:\n%s", buf.String())
	}
	if len(db.ProvenanceCommands()) != 1 {
		t.Errorf("commands = %d", len(db.ProvenanceCommands()))
	}
}
