package scidb

// One testing.B benchmark per experiment in DESIGN.md's index. These are
// the stable micro-benchmarks behind the tables that cmd/scidb-bench
// prints; EXPERIMENTS.md records both. Run:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"scidb/internal/array"
	"scidb/internal/click"
	"scidb/internal/cluster"
	"scidb/internal/compress"
	"scidb/internal/cook"
	"scidb/internal/insitu"
	"scidb/internal/ops"
	"scidb/internal/partition"
	"scidb/internal/provenance"
	"scidb/internal/ssdb"
	"scidb/internal/storage"
	"scidb/internal/tablesim"
	"scidb/internal/udf"
	"scidb/internal/version"
)

// --- FIG1/FIG2/FIG3: the paper's operator figures -------------------------

func figVec(n int64) *array.Array {
	s := &array.Schema{
		Name:  "A",
		Dims:  []array.Dimension{{Name: "x", High: n}},
		Attrs: []array.Attribute{{Name: "val", Type: array.TInt64}},
	}
	a := array.MustNew(s)
	for i := int64(1); i <= n; i++ {
		_ = a.Set(array.Coord{i}, array.Cell{array.Int64(i % 7)})
	}
	return a
}

func BenchmarkFIG1Sjoin(b *testing.B) {
	l, r := figVec(256), figVec(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.Sjoin(l, r, []ops.DimPair{{LDim: "x", RDim: "x"}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFIG2Aggregate(b *testing.B) {
	g := benchGrid(64)
	reg := udf.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.Aggregate(g, []string{"j"}, []ops.AggSpec{{Agg: "sum", Attr: "v"}}, reg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFIG3Cjoin(b *testing.B) {
	l, r := figVec(48), figVec(48)
	pred := ops.Binary{Op: ops.OpEq, L: ops.AttrRef{Name: "val"}, R: ops.AttrRef{Name: "A_val"}}
	reg := udf.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.Cjoin(l, r, pred, reg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ASAP: array-native vs. operator layer vs. table ------------------------

func benchGrid(n int64) *array.Array {
	s := &array.Schema{
		Name: "grid",
		Dims: []array.Dimension{
			{Name: "i", High: n, ChunkLen: n},
			{Name: "j", High: n, ChunkLen: n},
		},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
	a := array.MustNew(s)
	_ = a.Fill(func(c array.Coord) array.Cell {
		return array.Cell{array.Float64(float64(c[0]*31 + c[1]))}
	})
	return a
}

func BenchmarkASAPNativeScan(b *testing.B) {
	a := benchGrid(256)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, ch := range a.Chunks() {
			for _, v := range ch.Cols[0].Floats {
				sink += v
			}
		}
	}
	_ = sink
}

func BenchmarkASAPOperatorScan(b *testing.B) {
	a := benchGrid(256)
	reg := udf.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.Aggregate(a, nil, []ops.AggSpec{{Agg: "sum", Attr: "v"}}, reg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkASAPTableScan(b *testing.B) {
	a := benchGrid(256)
	tab, err := tablesim.FromArray(a, "pk")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		tab.Scan(func(_ int64, r tablesim.Row) bool {
			sink += r[2].AsFloat()
			return true
		})
	}
	_ = sink
}

func BenchmarkASAPTableWindow(b *testing.B) {
	a := benchGrid(256)
	tab, err := tablesim.FromArray(a, "pk")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		_ = tab.IndexRange("pk", []int64{65, 65}, []int64{192, 192},
			func(_ int64, r tablesim.Row) bool {
				if j := r[1].Int; j < 65 || j > 192 {
					return true
				}
				sink += r[2].AsFloat()
				return true
			})
	}
	_ = sink
}

// --- HIST: no-overwrite updates and history travel ---------------------------

func BenchmarkHistoryUpdate(b *testing.B) {
	s := &array.Schema{
		Name:  "h",
		Dims:  []array.Dimension{{Name: "x", High: 64}, {Name: "y", High: 64}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
	u, err := version.NewUpdatable(s)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := u.Begin()
		for k := 0; k < 64; k++ {
			_ = tx.Put(array.Coord{rng.Int63n(64) + 1, rng.Int63n(64) + 1},
				array.Cell{array.Float64(float64(i))})
		}
		if _, err := tx.Commit(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistoryTravel(b *testing.B) {
	s := &array.Schema{
		Name:  "h",
		Dims:  []array.Dimension{{Name: "x", High: 8}, {Name: "y", High: 8}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
	u, _ := version.NewUpdatable(s)
	hot := array.Coord{1, 1}
	for i := 0; i < 100; i++ {
		tx := u.Begin()
		_ = tx.Put(hot, array.Cell{array.Float64(float64(i))})
		_, _ = tx.Commit(int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := u.CellHistory(hot); len(got) != 100 {
			b.Fatal("history wrong")
		}
	}
}

// --- PART: the automatic designer --------------------------------------------

func BenchmarkPartitionDesigner(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	sample := make([]partition.SampleAccess, 10000)
	for i := range sample {
		sample[i] = partition.SampleAccess{
			Coord:  array.Coord{int64(i), rng.Int63n(1000) + 1},
			Weight: 1,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Design(sample, 1, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- COPART: co-partitioned distributed join ---------------------------------

func BenchmarkCoPartitionedJoin(b *testing.B) {
	tr := cluster.NewLocal(4)
	co := cluster.NewCoordinator(tr, 0)
	scheme := partition.Block{Nodes: 4, SplitDim: 0, High: 256}
	vs := func(name string) *array.Schema {
		return &array.Schema{
			Name:  name,
			Dims:  []array.Dimension{{Name: "x", High: 256}},
			Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
		}
	}
	_ = co.Create("A", vs("A"), scheme)
	_ = co.Create("B", vs("B"), scheme)
	for i := int64(1); i <= 256; i++ {
		_ = co.Put("A", array.Coord{i}, array.Cell{array.Float64(float64(i))})
		_ = co.Put("B", array.Coord{i}, array.Cell{array.Float64(float64(i))})
	}
	_ = co.Flush("A")
	_ = co.Flush("B")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := co.Sjoin("A", "B", []string{"x"}, []string{"x"}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- STORE: codecs and bucket reads -------------------------------------------

func storeBenchData() (*array.Schema, []array.Coord, []array.Cell) {
	s := &array.Schema{
		Name:  "sensor",
		Dims:  []array.Dimension{{Name: "t", High: 64}, {Name: "site", High: 64}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
	var coords []array.Coord
	var cells []array.Cell
	for t := int64(1); t <= 64; t++ {
		for site := int64(1); site <= 64; site++ {
			coords = append(coords, array.Coord{t, site})
			cells = append(cells, array.Cell{array.Float64(float64(t) + float64(site)*0.001)})
		}
	}
	return s, coords, cells
}

func benchStoreCodec(b *testing.B, codec compress.Codec) {
	s, coords, cells := storeBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := storage.NewStore(s, storage.Options{Codec: codec, Stride: []int64{32, 32}})
		if err != nil {
			b.Fatal(err)
		}
		for k := range coords {
			_ = st.Put(coords[k], cells[k])
		}
		if err := st.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorageCodecNone(b *testing.B)  { benchStoreCodec(b, compress.None{}) }
func BenchmarkStorageCodecDelta(b *testing.B) { benchStoreCodec(b, compress.Delta{}) }
func BenchmarkStorageCodecGzip(b *testing.B)  { benchStoreCodec(b, compress.Gzip{}) }
func BenchmarkStorageCodecAuto(b *testing.B)  { benchStoreCodec(b, compress.Auto{}) }

func BenchmarkStoragePointRead(b *testing.B) {
	s, coords, cells := storeBenchData()
	st, _ := storage.NewStore(s, storage.Options{Stride: []int64{32, 32}})
	for k := range coords {
		_ = st.Put(coords[k], cells[k])
	}
	_ = st.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := st.Get(array.Coord{32, 32}); !ok || err != nil {
			b.Fatal(ok, err)
		}
	}
}

// benchDiskStore builds an on-disk store with the sensor grid flushed to
// compressed buckets. cacheBytes 0 = uncached (every scan pays disk+decode).
func benchDiskStore(b *testing.B, cacheBytes int64) *storage.Store {
	b.Helper()
	s, coords, cells := storeBenchData()
	st, err := storage.NewStore(s, storage.Options{
		Dir:        b.TempDir(),
		Stride:     []int64{32, 32},
		CacheBytes: cacheBytes,
	})
	if err != nil {
		b.Fatal(err)
	}
	for k := range coords {
		_ = st.Put(coords[k], cells[k])
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = st.Close() })
	return st
}

func benchScanAll(b *testing.B, st *storage.Store) {
	b.Helper()
	var n int64
	if err := st.Scan(array.NewBox(array.Coord{1, 1}, array.Coord{64, 64}), func(array.Coord, array.Cell) bool {
		n++
		return true
	}); err != nil {
		b.Fatal(err)
	}
	if n != 64*64 {
		b.Fatalf("scan saw %d cells", n)
	}
}

// BenchmarkScanCold: no buffer pool — every scan re-reads and re-decompresses
// all buckets from disk (the pre-pool behaviour).
func BenchmarkScanCold(b *testing.B) {
	st := benchDiskStore(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchScanAll(b, st)
	}
	if st.Stats().BucketsRead < int64(b.N) {
		b.Fatal("cold benchmark did not hit disk per scan")
	}
}

// BenchmarkScanWarm: same workload with the pool primed — zero disk reads in
// the measured loop. EXPERIMENTS.md records the cold/warm ratio.
func BenchmarkScanWarm(b *testing.B) {
	st := benchDiskStore(b, 64<<20)
	benchScanAll(b, st) // prime the pool
	primed := st.Stats().BucketsRead
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchScanAll(b, st)
	}
	b.StopTimer()
	if got := st.Stats().BucketsRead - primed; got != 0 {
		b.Fatalf("warm benchmark performed %d disk reads", got)
	}
}

// --- INSITU: box query through the NCL adaptor --------------------------------

func BenchmarkInSituBoxQuery(b *testing.B) {
	src := benchGrid(128)
	path := filepath.Join(b.TempDir(), "bench.ncl")
	if err := insitu.WriteNCL(path, src); err != nil {
		b.Fatal(err)
	}
	ds, err := (insitu.NCLAdaptor{}).Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	box := array.NewBox(array.Coord{1, 1}, array.Coord{16, 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		if err := ds.Scan(box, func(_ array.Coord, c array.Cell) bool {
			sum += c[0].AsFloat()
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInSituMaterialize(b *testing.B) {
	src := benchGrid(128)
	path := filepath.Join(b.TempDir(), "bench.ncl")
	if err := insitu.WriteNCL(path, src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := (insitu.NCLAdaptor{}).Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := insitu.Materialize(ds); err != nil {
			b.Fatal(err)
		}
		ds.Close()
	}
}

// --- VER: read through a version chain -----------------------------------------

func BenchmarkVersionChainRead(b *testing.B) {
	s := &array.Schema{
		Name:  "base",
		Dims:  []array.Dimension{{Name: "x", High: 64}, {Name: "y", High: 64}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64}},
	}
	u, _ := version.NewUpdatable(s)
	tx := u.Begin()
	for x := int64(1); x <= 64; x++ {
		for y := int64(1); y <= 64; y++ {
			_ = tx.Put(array.Coord{x, y}, array.Cell{array.Float64(float64(x * y))})
		}
	}
	_, _ = tx.Commit(1)
	tree := version.NewTree(u)
	parent := ""
	var leaf *version.Version
	for d := 1; d <= 4; d++ {
		name := fmt.Sprintf("v%d", d)
		v, _ := tree.Create(name, parent)
		vtx := v.Begin()
		_ = vtx.Put(array.Coord{int64(d), int64(d)}, array.Cell{array.Float64(float64(d))})
		_, _ = vtx.Commit(int64(d + 1))
		parent = name
		leaf = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := array.Coord{int64(i%64 + 1), int64((i*7)%64 + 1)}
		leaf.At(c)
	}
}

// --- PROV: trace latency ---------------------------------------------------------

func provBenchLog() *provenance.Log {
	l := provenance.NewLog()
	l.Append(&provenance.Command{Kind: provenance.KindLoad, Output: "raw"})
	l.Append(&provenance.Command{Kind: provenance.KindElementwise, Input: "raw", Output: "cal"})
	l.Append(&provenance.Command{Kind: provenance.KindRegrid, Input: "cal", Output: "coarse",
		Strides: []int64{4, 4}, InBounds: []int64{64, 64}, InDims: 2})
	l.Append(&provenance.Command{Kind: provenance.KindAggregate, Input: "coarse", Output: "rowsum",
		GroupDims: []int{0}, InDims: 2, InBounds: []int64{16, 16}})
	return l
}

func BenchmarkProvenanceBackward(b *testing.B) {
	l := provBenchLog()
	ref := provenance.CellRef{Array: "rowsum", Coord: array.Coord{2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.TraceBack(ref); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProvenanceForward(b *testing.B) {
	l := provBenchLog()
	ref := provenance.CellRef{Array: "raw", Coord: array.Coord{3, 3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.TraceForward(ref); err != nil {
			b.Fatal(err)
		}
	}
}

// --- UNC: uncertain arithmetic ------------------------------------------------------

func BenchmarkUncertainApply(b *testing.B) {
	s := &array.Schema{
		Name:  "u",
		Dims:  []array.Dimension{{Name: "x", High: 64}, {Name: "y", High: 64}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TFloat64, Uncertain: true}},
	}
	a := array.MustNew(s)
	_ = a.Fill(func(c array.Coord) array.Cell {
		return array.Cell{array.UncertainFloat(float64(c[0]+c[1]), 0.1)}
	})
	expr := ops.Binary{Op: ops.OpMul, L: ops.AttrRef{Name: "v"}, R: ops.AttrRef{Name: "v"}}
	reg := udf.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.Apply(a, []ops.ApplySpec{{Name: "sq", Expr: expr}}, reg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- CLICK: nested-array analytics ----------------------------------------------------

func BenchmarkClickstreamArray(b *testing.B) {
	cfg := click.DefaultConfig()
	cfg.Events = 500
	stream, err := click.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := click.SurfacedNeverClicked(stream); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClickstreamSQL(b *testing.B) {
	cfg := click.DefaultConfig()
	cfg.Events = 500
	stream, _ := click.Generate(cfg)
	_, impressions, err := click.ToWeblogTables(stream)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := click.SurfacedNeverClickedSQL(impressions); err != nil {
			b.Fatal(err)
		}
	}
}

// --- SSDB: the science benchmark ------------------------------------------------------

var ssdbBench *ssdb.Dataset

func ssdbDataset(b *testing.B) *ssdb.Dataset {
	b.Helper()
	if ssdbBench == nil {
		cfg := ssdb.DefaultConfig()
		cfg.Size = 48
		d, err := ssdb.Setup(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ssdbBench = d
	}
	return ssdbBench
}

func BenchmarkSSDBQ1Array(b *testing.B) {
	d := ssdbDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Q1Array(8, 24); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSDBQ1Table(b *testing.B) {
	d := ssdbDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Q1Table(8, 24); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSDBQ5Array(b *testing.B) {
	d := ssdbDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Q5Array(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSDBQ5Table(b *testing.B) {
	d := ssdbDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Q5Table(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSDBQ8Array(b *testing.B) {
	d := ssdbDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Q8Array(7, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSDBQ8Table(b *testing.B) {
	d := ssdbDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Q8Table(7, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSDBCook(b *testing.B) {
	cfg := cook.Config{Width: 32, Height: 32, Passes: 3, Seed: 1, CloudFraction: 0.3, Gain: 0.01, Offset: -2}
	raw, err := cook.GeneratePasses(cfg)
	if err != nil {
		b.Fatal(err)
	}
	reg := udf.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cook.Cook(raw, cfg, cook.LeastCloud, reg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
