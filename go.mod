module scidb

go 1.22
