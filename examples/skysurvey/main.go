// Sky survey: the LSST-style grid scenario of §2.7 — a survey image is
// partitioned across a shared-nothing cluster, scanned and aggregated with
// partial pushdown, joined co-partitioned against a catalog with zero data
// movement, and repartitioned when the workload turns out to be skewed
// (the steerable/El Niño case), with the automatic designer picking the
// new scheme from a sample workload.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"scidb"
	"scidb/internal/array"
	"scidb/internal/cluster"
	"scidb/internal/partition"
)

func main() {
	const (
		nodes = 4
		n     = 128
	)
	// An in-process grid; swap cluster.DialTCP(addrs) to run against real
	// scidb-server nodes — the protocol is identical.
	tr := cluster.NewLocal(nodes)
	co := cluster.NewCoordinator(tr, 0)

	skySchema := &scidb.Schema{
		Name: "sky",
		Dims: []scidb.Dimension{
			{Name: "ra", High: n},
			{Name: "dec", High: n},
		},
		Attrs: []scidb.Attribute{{Name: "flux", Type: scidb.TFloat64}},
	}
	catSchema := &scidb.Schema{
		Name: "catalog",
		Dims: []scidb.Dimension{
			{Name: "ra", High: n},
			{Name: "dec", High: n},
		},
		Attrs: []scidb.Attribute{{Name: "starid", Type: scidb.TInt64}},
	}
	// Fixed block partitioning on ra: right for whole-sky scans.
	fixed := partition.Block{Nodes: nodes, SplitDim: 0, High: n}
	mustErr(co.Create("sky", skySchema, fixed))
	mustErr(co.Create("catalog", catSchema, fixed)) // co-partitioned!

	rng := rand.New(rand.NewSource(8))
	var stars int64
	for ra := int64(1); ra <= n; ra++ {
		for dec := int64(1); dec <= n; dec++ {
			flux := rng.Float64() * 100
			mustErr(co.Put("sky", scidb.Coord{ra, dec}, scidb.Cell{scidb.Float(flux)}))
			if flux > 97 { // bright sources enter the catalog
				stars++
				mustErr(co.Put("catalog", scidb.Coord{ra, dec}, scidb.Cell{scidb.Int(stars)}))
			}
		}
	}
	mustErr(co.Flush("sky"))
	mustErr(co.Flush("catalog"))
	total, _ := co.Count("sky")
	fmt.Printf("loaded %d sky pixels and %d catalog stars across %d nodes\n", total, stars, nodes)

	// Whole-sky aggregate with partial pushdown.
	whole := array.NewBox(scidb.Coord{1, 1}, scidb.Coord{n, n})
	avg, err := co.Aggregate("sky", whole, "avg", "flux", nil)
	mustErr(err)
	cell, _ := avg.At(scidb.Coord{1})
	fmt.Printf("whole-sky mean flux: %.2f (each node computed a partial)\n", cell[0].Float)

	// Co-partitioned join: zero bytes moved.
	co.ResetBytesMoved()
	matches, err := co.Sjoin("catalog", "sky", []string{"ra", "dec"}, []string{"ra", "dec"})
	mustErr(err)
	fmt.Printf("catalog⋈sky (co-partitioned): %d matches, %d bytes moved\n",
		matches.Count(), co.BytesMoved())

	// The workload turns steerable: 90%% of queries hit a narrow dec band.
	var sample []partition.SampleAccess
	for i := 0; i < 5000; i++ {
		dec := rng.Int63n(n) + 1
		if rng.Float64() < 0.9 {
			dec = n/2 + rng.Int63n(6)
		}
		sample = append(sample, partition.SampleAccess{
			Coord:  scidb.Coord{rng.Int63n(n) + 1, dec},
			Weight: 1,
		})
	}
	fmt.Printf("\nhotspot workload imbalance under fixed ra-blocks: %.2fx\n",
		partition.Imbalance(fixed, sample))

	// Note the fixed scheme splits ra, so a dec hotspot is actually spread —
	// but a dec-partitioned survey (common for drift scans) would suffer:
	fixedDec := partition.Block{Nodes: nodes, SplitDim: 1, High: n}
	fmt.Printf("...and under fixed dec-blocks: %.2fx\n", partition.Imbalance(fixedDec, sample))

	// The automatic designer derives a balanced scheme from the sample.
	designed, err := partition.Design(sample, 1, nodes)
	mustErr(err)
	fmt.Printf("designer-derived scheme %s imbalance: %.2fx\n",
		designed.Name(), partition.Imbalance(designed, sample))

	// Repartition the live array; only cells that change owner move.
	co.ResetBytesMoved()
	mustErr(co.Repartition("sky", designed))
	fmt.Printf("repartitioned sky: %d bytes moved\n", co.BytesMoved())
	after, _ := co.Count("sky")
	fmt.Printf("data intact after repartition: %d pixels\n", after)

	stats, _ := co.NodeStats()
	fmt.Println("\nper-node cells held after repartition:")
	for i, s := range stats {
		fmt.Printf("  node %d: %d cells\n", i, s.CellsHeld)
	}
}

func mustErr(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
