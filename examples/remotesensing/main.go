// Remote sensing: the paper's core science scenario end to end — raw
// satellite passes are cooked inside the engine (§2.10), published as an
// updatable no-overwrite array (§2.5), re-cooked under an alternative
// calibration in a named version (§2.11), and carried with error bars
// (§2.13). The scientist's "which observation fed this pixel?" question is
// answered by the provenance log (§2.12).
package main

import (
	"fmt"
	"log"

	"scidb"
	"scidb/internal/cook"
	"scidb/internal/udf"
)

func main() {
	cfg := cook.Config{
		Width: 32, Height: 32, Passes: 4, Seed: 17,
		CloudFraction: 0.35, Gain: 0.01, Offset: -2,
	}
	reg := udf.NewRegistry()

	// 1. Raw passes arrive (simulated instrument; see DESIGN.md).
	raw, err := cook.GeneratePasses(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw: %d observations across %d passes\n", raw.Count(), cfg.Passes)

	// 2. Cook inside the engine: calibrate then composite by least cloud.
	cooked, err := cook.Cook(raw, cfg, cook.LeastCloud, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cooked (least-cloud): %d pixels, RMSE vs truth %.4f\n",
		cooked.Count(), cook.RMSE(cooked))

	// 3. Publish as a no-overwrite updatable array: the initial load lands
	// at history = 1; corrections never overwrite.
	db := scidb.Open()
	tick := int64(0)
	db.SetClock(func() int64 { tick++; return tick })
	if _, err := db.Exec("define updatable array Scene (radiance = uncertain float) (x, y)"); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec("create array scene as Scene [32, 32]"); err != nil {
		log.Fatal(err)
	}
	u, _ := db.Updatable("scene")
	tx := u.Begin()
	cooked.Iter(func(c scidb.Coord, cell scidb.Cell) bool {
		// Radiance carries an instrument error bar (§2.13).
		_ = tx.Put(c, scidb.Cell{scidb.UncertainFloat(cell[0].Float, 0.05)})
		return true
	})
	if _, err := tx.Commit(1); err != nil {
		log.Fatal(err)
	}

	// A later correction updates one bad pixel; the old value is retained.
	bad := scidb.Coord{5, 5}
	tx = u.Begin()
	_ = tx.Put(bad, scidb.Cell{scidb.UncertainFloat(cook.GroundTruth(5, 5), 0.01)})
	if _, err := tx.Commit(2); err != nil {
		log.Fatal(err)
	}
	hist := u.CellHistory(bad)
	fmt.Printf("\npixel %v history (%d entries):\n", bad, len(hist))
	for _, h := range hist {
		fmt.Printf("  history=%d  value=%s\n", h.History, h.Cell[0])
	}

	// 4. A scientist wants a different cooking step for part of the data:
	// a named version re-cooked with the nearest-nadir policy (§2.11).
	if _, err := db.Exec("create version nadir_study from scene"); err != nil {
		log.Fatal(err)
	}
	tree, _ := db.VersionTree("scene")
	v, _ := tree.Get("nadir_study")
	nadirCooked, err := cook.Cook(raw, cfg, cook.NearestNadir, reg)
	if err != nil {
		log.Fatal(err)
	}
	vtx := v.Begin()
	diverged := 0
	nadirCooked.Iter(func(c scidb.Coord, cell scidb.Cell) bool {
		base, _ := u.AtLatest(c)
		if base != nil && base[0].Float != cell[0].Float {
			_ = vtx.Put(c, scidb.Cell{scidb.UncertainFloat(cell[0].Float, 0.05)})
			diverged++
		}
		return true
	})
	if _, err := vtx.Commit(3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nversion nadir_study: %d of %d pixels diverge; delta costs %d bytes\n",
		diverged, cooked.Count(), v.DeltaBytes())
	vb, _ := v.At(bad)
	bb, _ := u.AtLatest(bad)
	fmt.Printf("pixel %v: base=%s, nadir_study=%s\n", bad, bb[0], vb[0])

	// 5. Uncertainty-aware analytics: sum the scene with error propagation.
	snap, _ := u.Snapshot(u.History())
	if err := db.PutArray("scene_now", snap); err != nil {
		log.Fatal(err)
	}
	res, err := db.Exec("aggregate(scene_now, {}, sum(radiance))")
	if err != nil {
		log.Fatal(err)
	}
	total, _ := res.Array.At(scidb.Coord{1})
	fmt.Printf("\nscene total radiance with propagated error: %s\n", total[0])
}
