// Quickstart: the paper's running example end to end — define the Remote
// array type, create an instance, load cells, and run the operators of
// §2.2 through both language bindings (AQL text and the fluent Go binding),
// which share one parse-tree representation.
package main

import (
	"fmt"
	"log"

	"scidb"
)

func main() {
	db := scidb.Open()

	// §2.1: define Remote (s1 = float, s2 = float, s3 = float) (I, J)
	must(db.Exec("define array Remote (s1 = float, s2 = float, s3 = float) (I, J)"))
	// create My_remote as Remote [16, 16] (the paper uses 1024x1024).
	must(db.Exec("create array My_remote as Remote [16, 16]"))

	// Load synthetic sensor values through the Go API.
	a, err := db.Array("My_remote")
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Fill(func(c scidb.Coord) scidb.Cell {
		base := float64(c[0]*16 + c[1])
		return scidb.Cell{scidb.Float(base), scidb.Float(base / 2), scidb.Float(base / 4)}
	}); err != nil {
		log.Fatal(err)
	}

	// A[7, 8] addressing.
	cell, _ := a.At(scidb.Coord{7, 8})
	fmt.Printf("My_remote[7, 8] = s1:%v s2:%v s3:%v\n\n", cell[0], cell[1], cell[2])

	// Subsample(F, even(X)) — §2.2.1, via AQL.
	res := mustQ(db.Exec("subsample(My_remote, even(I) and J < 4)"))
	fmt.Printf("subsample(My_remote, even(I) and J < 4): %d cells, bounds %dx%d\n",
		res.Count(), res.Hwm(0), res.Hwm(1))

	// Aggregate(H, {Y}, Sum(*)) — §2.2.2, via the Go binding.
	agg, err := db.Run(scidb.Scan("My_remote").Aggregate([]string{"J"}, scidb.Sum("s1")))
	if err != nil {
		log.Fatal(err)
	}
	col1, _ := agg.Array.At(scidb.Coord{1})
	fmt.Printf("sum(s1) grouped by J, J=1: %v\n", col1[0])

	// Filter keeps the shape, NULLing failing cells — §2.2.2.
	filtered := mustQ(db.Exec("filter(My_remote, s1 > 200)"))
	var kept int
	filtered.Iter(func(_ scidb.Coord, c scidb.Cell) bool {
		if !c[0].Null {
			kept++
		}
		return true
	})
	fmt.Printf("filter(s1 > 200): %d of %d cells kept (others NULL)\n", kept, filtered.Count())

	// Derived arrays are provenance-tracked — §2.12.
	must(db.Exec("store regrid(My_remote, [4, 4], avg(s1)) into Coarse"))
	steps, err := db.TraceBack(scidb.CellRef{Array: "Coarse", Coord: scidb.Coord{1, 1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Coarse[1,1] derives from %d input cells via %q\n",
		len(steps[0].Refs), steps[0].Command.Text)

	coarse, _ := db.Array("Coarse")
	fmt.Println("\nCoarse (4x4 block averages of s1):")
	fmt.Print(scidb.Render(coarse))
}

func must(res *scidb.Result, err error) *scidb.Result {
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func mustQ(res *scidb.Result, err error) *scidb.Array {
	if err != nil {
		log.Fatal(err)
	}
	return res.Array
}
