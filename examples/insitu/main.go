// In-situ: the §2.9 scenario — "I am looking forward to getting something
// done, but I am still trying to load my data." An external NetCDF-like
// file is attached to the engine with no load step; box queries read only
// what they touch; and only a whole-array analysis triggers (and caches) a
// full materialization.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"scidb"
	"scidb/internal/array"
	"scidb/internal/insitu"
)

func main() {
	// 1. An instrument wrote a 512x512 NCL file (our NetCDF stand-in).
	dir, err := os.MkdirTemp("", "scidb-insitu-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ocean.ncl")
	src := array.MustNew(&scidb.Schema{
		Name: "ocean",
		Dims: []scidb.Dimension{
			{Name: "lat", High: 512},
			{Name: "lon", High: 512},
		},
		Attrs: []scidb.Attribute{{Name: "sst", Type: scidb.TFloat64}},
	})
	if err := src.Fill(func(c scidb.Coord) scidb.Cell {
		return scidb.Cell{scidb.Float(15 + float64(c[0])/60 - float64(c[1])/90)}
	}); err != nil {
		log.Fatal(err)
	}
	if err := insitu.WriteNCL(path, src); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("external file: %s (%.1f MB)\n\n", filepath.Base(path), float64(fi.Size())/1e6)

	// 2. Attach — header only, no load.
	db := scidb.Open()
	start := time.Now()
	res, err := db.Exec("attach ocean from '" + path + "' using ncl")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s  (%v)\n", res.Msg, time.Since(start))

	// 3. A study-area query: the subsample box is pushed down into the
	// file scan; only ~1,600 of 262,144 cells are read.
	start = time.Now()
	res, err = db.Exec("aggregate(subsample(ocean, lat >= 100 and lat <= 139 and lon >= 200 and lon <= 239), {}, avg(sst))")
	if err != nil {
		log.Fatal(err)
	}
	cell, _ := res.Array.At(scidb.Coord{1})
	fmt.Printf("study-area mean SST: %.3f  (in-situ box read, %v)\n", cell[0].Float, time.Since(start))

	// 4. A whole-array analysis needs everything: the engine materializes
	// once, then caches.
	start = time.Now()
	res, err = db.Exec("aggregate(ocean, {}, max(sst), min(sst))")
	if err != nil {
		log.Fatal(err)
	}
	cell, _ = res.Array.At(scidb.Coord{1})
	fmt.Printf("global max/min SST: %.3f / %.3f  (full materialize, %v)\n",
		cell[0].Float, cell[1].Float, time.Since(start))

	start = time.Now()
	if _, err = db.Exec("aggregate(ocean, {}, count(sst))"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat whole-array query: cached  (%v)\n", time.Since(start))

	// 5. The same file can also be bulk-converted to the self-describing
	// SDF format (what cmd/scidb-load -out does).
	sdfPath := filepath.Join(dir, "ocean.sdf")
	ds, err := (insitu.NCLAdaptor{}).Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	a, err := insitu.Materialize(ds)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(sdfPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := insitu.WriteSDF(f, a); err != nil {
		log.Fatal(err)
	}
	sfi, _ := os.Stat(sdfPath)
	fmt.Printf("\nconverted to self-describing SDF: %s (%.1f MB)\n",
		filepath.Base(sdfPath), float64(sfi.Size())/1e6)
}
