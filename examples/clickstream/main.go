// Clickstream: the eBay use case of §2.14 — a click stream modelled as a
// 1-D time-series array with embedded search-result arrays. The analysis
// the paper highlights ("how often did a particular item get surfaced but
// was never clicked on?", "items 7 and then 9 were touched") runs directly
// on the nested arrays and is cross-checked against the traditional weblog
// table representation.
package main

import (
	"fmt"
	"log"
	"sort"

	"scidb/internal/click"
)

func main() {
	cfg := click.DefaultConfig()
	cfg.Events = 1000
	cfg.Seed = 4
	stream, err := click.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("click stream: %d search events, %d results each\n\n", cfg.Events, cfg.ResultsPer)

	// Search quality: are the top results actually interesting?
	frac, clicked, err := click.SearchQuality(stream, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searches with a click: %d\n", clicked)
	fmt.Printf("clicks landing beyond rank 6: %.1f%%  (the paper's 'top 6 items were not of interest' signal)\n\n", 100*frac)

	// The user-ignored content analysis.
	stats, err := click.SurfacedNeverClicked(stream)
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		item               int64
		surfaced, clickedN int64
	}
	var rows []row
	for _, st := range stats {
		rows = append(rows, row{st.Item, st.Surfaced, st.Clicked})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].surfaced != rows[j].surfaced {
			return rows[i].surfaced > rows[j].surfaced
		}
		return rows[i].item < rows[j].item
	})
	fmt.Println("most-surfaced items and their clicks:")
	fmt.Printf("  %-6s %9s %8s\n", "item", "surfaced", "clicked")
	for _, r := range rows[:5] {
		fmt.Printf("  %-6d %9d %8d\n", r.item, r.surfaced, r.clickedN)
	}
	var never int
	for _, st := range stats {
		if st.Clicked == 0 {
			never++
		}
	}
	fmt.Printf("items surfaced but never clicked: %d of %d\n\n", never, len(stats))

	// Per-user click paths ("the user might click on item 7, then 9").
	paths, err := click.SessionPaths(stream)
	if err != nil {
		log.Fatal(err)
	}
	var users []int64
	for u := range paths {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	fmt.Println("sample user click paths:")
	for _, u := range users[:3] {
		fmt.Printf("  user %d touched items %v\n", u, paths[u])
	}

	// Cross-check against the weblog-table route.
	_, impressions, err := click.ToWeblogTables(stream)
	if err != nil {
		log.Fatal(err)
	}
	sqlStats, err := click.SurfacedNeverClickedSQL(impressions)
	if err != nil {
		log.Fatal(err)
	}
	for item, a := range stats {
		b := sqlStats[item]
		if b == nil || a.Surfaced != b.Surfaced || a.Clicked != b.Clicked {
			log.Fatalf("engines disagree on item %d", item)
		}
	}
	fmt.Printf("\nweblog-table cross-check: %d items agree exactly (flattened to %d impression rows)\n",
		len(sqlStats), impressions.NumRows())
}
